"""Experiment T1-2D — Table 1, row 1: the optimal 2-D structure.

Paper claim: O(n) blocks of space and O(log_B n + t) I/Os per query, in the
worst case.  The benchmark builds the structure for increasing N, runs
query batches with (a) a fixed output size and (b) a fixed selectivity, and
prints measured I/Os, output sizes and space.  The shape to verify:

* at fixed output size the mean I/Os stay essentially flat as N grows
  (the additive log_B n term moves by < a couple of I/Os over a 8x range);
* at fixed selectivity the mean I/Os grow linearly with t;
* space stays within a small constant of n = ⌈N/B⌉.
"""

from __future__ import annotations

import math

import pytest

from repro import HalfplaneIndex2D
from repro.baselines import FullScanIndex
from repro.experiments import ExperimentResult, log_fit_exponent, run_query_workload
from repro.workloads import halfspace_queries_with_selectivity, uniform_points

from .conftest import blocks, print_experiment

BLOCK_SIZE = 32
SIZES = [2048, 4096, 8192, 16384]
FIXED_OUTPUT = 256           # records per query for the "fixed T" batch
NUM_QUERIES = 8

_cache = {}


def build(num_points):
    if num_points not in _cache:
        points = uniform_points(num_points, seed=num_points)
        index = HalfplaneIndex2D(points, block_size=BLOCK_SIZE, seed=1)
        _cache[num_points] = (points, index)
    return _cache[num_points]


def run_fixed_output(num_points):
    points, index = build(num_points)
    selectivity = FIXED_OUTPUT / num_points
    queries = halfspace_queries_with_selectivity(points, NUM_QUERIES,
                                                 selectivity, seed=2)
    return run_query_workload(index, queries, label="N=%d fixed-T" % num_points)


def run_fixed_selectivity(num_points, selectivity):
    points, index = build(num_points)
    queries = halfspace_queries_with_selectivity(points, NUM_QUERIES,
                                                 selectivity, seed=3)
    return run_query_workload(index, queries,
                              label="N=%d sel=%g" % (num_points, selectivity))


@pytest.mark.parametrize("num_points", SIZES)
def test_t1_2d_query_ios(benchmark, num_points):
    """Query I/Os of the 2-D structure at a fixed output size."""
    points, index = build(num_points)
    selectivity = FIXED_OUTPUT / num_points
    queries = halfspace_queries_with_selectivity(points, NUM_QUERIES,
                                                 selectivity, seed=2)
    summary = run_query_workload(index, queries, label="warmup")
    benchmark(lambda: [index.query(q) for q in queries])
    benchmark.extra_info["mean_ios"] = summary.mean_ios
    benchmark.extra_info["mean_t"] = summary.mean_output_blocks
    benchmark.extra_info["space_blocks"] = index.space_blocks
    benchmark.extra_info["n_blocks"] = blocks(num_points, BLOCK_SIZE)


def test_t1_2d_report_table(benchmark):
    """Print the full Table-1-row-1 evidence table and check its shape."""
    # Register with pytest-benchmark so this evidence test also runs
    # under --benchmark-only (it measures I/Os, not wall-clock time).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = ExperimentResult(
        "T1-2D", "2-D halfplane queries: O(n) space, O(log_B n + t) I/Os")
    fixed_costs = []
    for num_points in SIZES:
        summary = run_fixed_output(num_points)
        fixed_costs.append(summary.mean_ios)
        result.add(summary)
    for selectivity in (0.01, 0.1):
        for num_points in (SIZES[0], SIZES[-1]):
            result.add(run_fixed_selectivity(num_points, selectivity))
    # Baseline for scale: a full scan at the largest size.
    points, __ = build(SIZES[-1])
    scan = FullScanIndex(points, block_size=BLOCK_SIZE)
    queries = halfspace_queries_with_selectivity(points, 2,
                                                 FIXED_OUTPUT / SIZES[-1], seed=2)
    result.add(run_query_workload(scan, queries, label="full-scan N=%d" % SIZES[-1]))
    print_experiment(result)

    # Shape check: with T fixed, quadrupling N should barely move the cost.
    growth = log_fit_exponent(SIZES, fixed_costs)
    print("fixed-output growth exponent (want << 1):", round(growth, 3))
    assert growth < 0.35
    # Space: linear with a small constant.
    for num_points in SIZES:
        __, index = build(num_points)
        assert index.space_blocks <= 8 * blocks(num_points, BLOCK_SIZE)


def test_t1_2d_space_scaling(benchmark):
    """Space in blocks versus n (should be a constant multiple)."""
    def measure():
        return {n: build(n)[1].space_blocks for n in SIZES}
    space = benchmark(measure)
    ratios = [space[n] / blocks(n, BLOCK_SIZE) for n in SIZES]
    benchmark.extra_info["space_over_n"] = ratios
    assert max(ratios) / min(ratios) < 2.0
