"""Experiment THM4.3-KNN — k-nearest-neighbour queries via lifting.

Paper claim (Theorem 4.3): O(n log2 n) expected blocks and
O(log_B n + k/B) expected I/Os to report the k nearest neighbours of a
planar query point.  The benchmark sweeps k and checks that the measured
I/Os grow roughly like k/B on top of a small additive term, and that
answers match a brute-force nearest-neighbour computation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import KNNIndex
from repro.experiments import ExperimentResult, QueryCostSummary, log_fit_exponent
from repro.workloads import uniform_points
from repro.workloads.queries import knn_query_points

from .conftest import blocks, print_experiment

BLOCK_SIZE = 32
NUM_POINTS = 4096
KS = [1, 8, 32, 128, 512]
NUM_QUERIES = 6

_cache = {}


def build():
    if "index" not in _cache:
        points = uniform_points(NUM_POINTS, seed=1)
        _cache["points"] = points
        _cache["index"] = KNNIndex(points, block_size=BLOCK_SIZE, copies=3, seed=2)
    return _cache["points"], _cache["index"]


def brute(points, query, k):
    distances = np.hypot(points[:, 0] - query[0], points[:, 1] - query[1])
    return [tuple(points[i]) for i in np.argsort(distances)[:k]]


@pytest.mark.parametrize("k", KS)
def test_knn_query(benchmark, k):
    """Wall-clock and I/O cost of k-NN queries for one value of k."""
    points, index = build()
    queries = knn_query_points(NUM_QUERIES, seed=3)
    # Correctness spot-check before timing.
    first = tuple(queries[0])
    assert index.nearest(first, k) == brute(points, first, k)
    total_ios = 0
    for query in queries:
        __, stats = index.nearest_with_stats(tuple(query), k)
        total_ios += stats.total
    benchmark(lambda: [index.nearest(tuple(q), k) for q in queries])
    benchmark.extra_info["k"] = k
    benchmark.extra_info["mean_ios"] = total_ios / NUM_QUERIES


def test_knn_report_table(benchmark):
    """Print mean I/Os per k and check the k/B growth shape."""
    # Register with pytest-benchmark so this evidence test also runs
    # under --benchmark-only (it measures I/Os, not wall-clock time).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points, index = build()
    queries = knn_query_points(NUM_QUERIES, seed=3)
    result = ExperimentResult(
        "THM4.3-KNN", "k nearest neighbours: O(log_B n + k/B) expected I/Os")
    mean_costs = []
    for k in KS:
        total_ios = 0
        max_ios = 0
        for query in queries:
            neighbours, stats = index.nearest_with_stats(tuple(query), k)
            assert len(neighbours) == k
            total_ios += stats.total
            max_ios = max(max_ios, stats.total)
        summary = QueryCostSummary(label="k=%d" % k, num_queries=NUM_QUERIES,
                                   total_ios=total_ios, max_ios=max_ios,
                                   total_reported=k * NUM_QUERIES,
                                   block_size=BLOCK_SIZE,
                                   space_blocks=index.space_blocks)
        mean_costs.append(summary.mean_ios)
        result.add(summary)
    print_experiment(result)

    # Growing k by 512x should grow the cost far less than 512x (the k/B
    # term is blocked), yet the largest k must not be cheaper than k/B.
    assert mean_costs[-1] < 80 * mean_costs[0]
    assert mean_costs[-1] >= KS[-1] / BLOCK_SIZE
    # Small-k queries stay near the additive term, far below a full scan.
    n = blocks(NUM_POINTS, BLOCK_SIZE)
    assert mean_costs[0] < n / 2
