"""Experiment SEC1.2-DEGRADE — the motivating comparison of Section 1.2.

Paper claim: practical heuristics (quad-trees, R-trees, k-d-B-trees) can be
forced to Ω(n) I/Os by N points on a diagonal line queried with a halfplane
bounded by a slight rotation of that line, even when the output is small,
while the paper's structure keeps its O(log_B n + t) guarantee.  The
benchmark measures exactly that workload for every baseline and for the
optimal 2-D structure, and additionally shows the same structures on a
uniform input where the heuristics do fine (so the contrast is attributable
to the adversarial input, not to a generally bad baseline implementation).
"""

from __future__ import annotations

import math

import pytest

from repro import HalfplaneIndex2D
from repro.baselines import FullScanIndex, KDBTreeIndex, QuadTreeIndex, RTreeIndex
from repro.experiments import ExperimentResult, run_query_workload
from repro.workloads import (
    diagonal_points,
    halfspace_queries_with_selectivity,
    rotated_diagonal_query,
    uniform_points,
)

from .conftest import blocks, print_experiment

BLOCK_SIZE = 32
NUM_POINTS = 6000
SELECTIVITY = 0.02

_cache = {}

STRUCTURES = {
    "quad-tree": QuadTreeIndex,
    "R-tree": RTreeIndex,
    "k-d-B-tree": KDBTreeIndex,
    "full scan": FullScanIndex,
    "HalfplaneIndex2D (Section 3)": lambda pts, block_size: HalfplaneIndex2D(
        pts, block_size=block_size, seed=11),
}


def datasets():
    if "diag" not in _cache:
        _cache["diag"] = diagonal_points(NUM_POINTS, seed=1)
        _cache["uniform"] = uniform_points(NUM_POINTS, seed=2)
    return _cache["diag"], _cache["uniform"]


def build(name, which):
    key = (name, which)
    if key not in _cache:
        diag, uniform = datasets()
        points = diag if which == "diag" else uniform
        factory = STRUCTURES[name]
        _cache[key] = factory(points, block_size=BLOCK_SIZE)
    return _cache[key]


@pytest.mark.parametrize("name", list(STRUCTURES))
def test_degradation_adversarial_query(benchmark, name):
    """Adversarial diagonal workload: cost of each structure."""
    diag, __ = datasets()
    index = build(name, "diag")
    constraint = rotated_diagonal_query(diag, angle=5e-4, selectivity=SELECTIVITY)
    result = index.query_with_stats(constraint)
    benchmark(lambda: index.query(constraint))
    benchmark.extra_info["ios"] = result.total_ios
    benchmark.extra_info["reported"] = result.count


def test_degradation_table(benchmark):
    """Print the Section 1.2 comparison table and check the contrast."""
    # Register with pytest-benchmark so this evidence test also runs
    # under --benchmark-only (it measures I/Os, not wall-clock time).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    diag, uniform = datasets()
    adversarial = [rotated_diagonal_query(diag, angle=5e-4,
                                          selectivity=SELECTIVITY)]
    benign = halfspace_queries_with_selectivity(uniform, 4, SELECTIVITY, seed=3)
    result = ExperimentResult(
        "SEC1.2-DEGRADE",
        "adversarial diagonal input (rotated query) versus uniform input")
    costs = {}
    for name in STRUCTURES:
        index = build(name, "diag")
        summary = run_query_workload(index, adversarial,
                                     label="%s / diagonal" % name)
        costs[name] = summary.mean_ios
        result.add(summary)
    for name in STRUCTURES:
        index = build(name, "uniform")
        result.add(run_query_workload(index, benign, label="%s / uniform" % name))
    print_experiment(result)

    n = blocks(NUM_POINTS, BLOCK_SIZE)
    ours = costs["HalfplaneIndex2D (Section 3)"]
    # The heuristics blow up to a constant fraction of n; ours stays far
    # below them and below a full scan.
    assert costs["quad-tree"] > n / 2
    assert costs["k-d-B-tree"] > n / 3
    assert ours < costs["quad-tree"] / 2
    assert ours < n
