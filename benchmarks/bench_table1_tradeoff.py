"""Experiments T1-3D-SHALLOW and T1-3D-HYBRID — Table 1, rows 3–4.

Paper claims (space / query trade-offs in R^3):

* shallow partition tree: O(n log_B n) blocks, O(n^eps + t) I/Os;
* hybrid structure (partition tree with Section 4 structures at leaves of
  size B^a): O(n log2 B) blocks, O((n / B^{a-1})^{2/3+eps} + t) I/Os.

The benchmark builds all four 3-D structures of Table 1 on the same input
and prints one row per structure: the trade-off should be visible as
monotone movement along the space axis with the query cost moving the other
way (linear-size tree slowest, the optimal Section 4 structure fastest).
"""

from __future__ import annotations

import math

import pytest

from repro import (
    HalfspaceIndex3D,
    HybridIndex3D,
    PartitionTreeIndex,
    ShallowPartitionTreeIndex,
)
from repro.experiments import ExperimentResult, run_query_workload
from repro.workloads import halfspace_queries_with_selectivity, uniform_points_ball

from .conftest import blocks, print_experiment

BLOCK_SIZE = 32
NUM_POINTS = 4096
NUM_QUERIES = 6
SELECTIVITY = 64.0 / NUM_POINTS

_cache = {}


def dataset():
    if "points" not in _cache:
        _cache["points"] = uniform_points_ball(NUM_POINTS, dimension=3, seed=1)
    return _cache["points"]


def build(kind):
    if kind not in _cache:
        points = dataset()
        if kind == "partition (row 5: O(n) space)":
            index = PartitionTreeIndex(points, block_size=BLOCK_SIZE)
        elif kind == "hybrid a=1.5 (row 4)":
            index = HybridIndex3D(points, block_size=BLOCK_SIZE,
                                  leaf_exponent=1.5, seed=2)
        elif kind == "shallow (row 3)":
            index = ShallowPartitionTreeIndex(points, block_size=BLOCK_SIZE)
        elif kind == "sampling (row 2: optimal query)":
            index = HalfspaceIndex3D(points, block_size=BLOCK_SIZE, copies=3,
                                     seed=3)
        else:
            raise KeyError(kind)
        _cache[kind] = index
    return _cache[kind]


KINDS = [
    "partition (row 5: O(n) space)",
    "hybrid a=1.5 (row 4)",
    "shallow (row 3)",
    "sampling (row 2: optimal query)",
]


@pytest.mark.parametrize("kind", KINDS)
def test_t1_3d_tradeoff_query(benchmark, kind):
    """Wall-clock and I/O cost of each Table-1 3-D structure."""
    points = dataset()
    index = build(kind)
    queries = halfspace_queries_with_selectivity(points, NUM_QUERIES,
                                                 SELECTIVITY, seed=4)
    summary = run_query_workload(index, queries, label=kind)
    benchmark(lambda: [index.query(q) for q in queries])
    benchmark.extra_info["mean_ios"] = summary.mean_ios
    benchmark.extra_info["space_blocks"] = index.space_blocks


def test_t1_3d_tradeoff_table(benchmark):
    """Print the space/query trade-off table for Table 1's 3-D rows."""
    # Register with pytest-benchmark so this evidence test also runs
    # under --benchmark-only (it measures I/Os, not wall-clock time).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = dataset()
    queries = halfspace_queries_with_selectivity(points, NUM_QUERIES,
                                                 SELECTIVITY, seed=4)
    result = ExperimentResult(
        "T1-3D-TRADEOFF", "space versus query I/Os for the four 3-D rows of Table 1")
    summaries = {}
    for kind in KINDS:
        index = build(kind)
        summary = run_query_workload(index, queries, label=kind)
        summaries[kind] = summary
        result.add(summary)
    print_experiment(result)

    n = blocks(NUM_POINTS, BLOCK_SIZE)
    partition = summaries["partition (row 5: O(n) space)"]
    sampling = summaries["sampling (row 2: optimal query)"]
    shallow = summaries["shallow (row 3)"]
    hybrid = summaries["hybrid a=1.5 (row 4)"]

    # Space ordering: linear-size tree uses the least space; the sampling
    # structure (n log2 n, three copies) uses the most.
    assert partition.space_blocks <= shallow.space_blocks
    assert partition.space_blocks <= sampling.space_blocks
    assert partition.space_blocks <= 8 * n

    # Query ordering (the point of the trade-off).  At the modest input
    # sizes feasible here the additive terms of all four structures are a
    # handful of I/Os, so the asymptotic separation shows up as "comparable
    # or better within a small factor" rather than a strict ordering: the
    # shallow tree must not lose to the linear-size tree by more than a few
    # per cent, and the leaf structures of the hybrid may cost a constant
    # factor more per visited leaf (their advantage needs n >> B^a).
    assert shallow.mean_ios <= 1.25 * partition.mean_ios
    assert hybrid.mean_ios <= 4.0 * partition.mean_ios
    # Every structure must remain output-sensitive: far below reporting by
    # scanning its own space.
    for summary in (partition, shallow, hybrid, sampling):
        assert summary.mean_ios < summary.space_blocks
