"""Experiments T1-3D-LINEAR and T1-dD — Table 1, rows 5–7: linear-size trees.

Paper claim: with O(n) blocks, a d-dimensional halfspace query costs
O(n^{1-1/d+eps} + t) I/Os.  The benchmark measures, for d = 2, 3, 4, the
query I/Os of the partition tree on growing inputs with small outputs and
fits the growth exponent, which should be close to (and not much above)
1 - 1/d; it also verifies the linear space bound and the simplex-query
variant (Remark i).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import PartitionTreeIndex
from repro.experiments import ExperimentResult, log_fit_exponent, run_query_workload
from repro.geometry.simplex import Simplex
from repro.workloads import halfspace_queries_with_selectivity, uniform_points

from .conftest import blocks, print_experiment

BLOCK_SIZE = 32
SIZES = [2048, 4096, 8192, 16384]
DIMENSIONS = [2, 3, 4]
NUM_QUERIES = 6

_cache = {}


def build(num_points, dimension):
    key = (num_points, dimension)
    if key not in _cache:
        points = uniform_points(num_points, dimension=dimension, seed=num_points + dimension)
        index = PartitionTreeIndex(points, block_size=BLOCK_SIZE)
        _cache[key] = (points, index)
    return _cache[key]


def small_output_queries(points, seed):
    return halfspace_queries_with_selectivity(points, NUM_QUERIES,
                                               64.0 / len(points), seed=seed)


@pytest.mark.parametrize("dimension", DIMENSIONS)
def test_t1_partition_query_ios(benchmark, dimension):
    """Query I/Os of the linear-size partition tree (largest size, small output)."""
    num_points = SIZES[-1]
    points, index = build(num_points, dimension)
    queries = small_output_queries(points, seed=10 + dimension)
    summary = run_query_workload(index, queries, label="warmup")
    benchmark(lambda: [index.query(q) for q in queries])
    benchmark.extra_info["mean_ios"] = summary.mean_ios
    benchmark.extra_info["dimension"] = dimension
    benchmark.extra_info["space_blocks"] = index.space_blocks


@pytest.mark.parametrize("dimension", DIMENSIONS)
def test_t1_partition_growth_exponent(benchmark, dimension):
    """Fit the I/O growth exponent and compare against 1 - 1/d."""
    # Register with pytest-benchmark so this evidence test also runs
    # under --benchmark-only (it measures I/Os, not wall-clock time).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = ExperimentResult(
        "T1-dD (d=%d)" % dimension,
        "linear-size partition tree: O(n) space, O(n^{1-1/d+eps} + t) I/Os")
    costs = []
    for num_points in SIZES:
        points, index = build(num_points, dimension)
        queries = small_output_queries(points, seed=20 + dimension)
        summary = run_query_workload(index, queries, label="N=%d" % num_points)
        costs.append(summary.mean_ios)
        result.add(summary)
    print_experiment(result)
    exponent = log_fit_exponent(SIZES, costs)
    target = 1.0 - 1.0 / dimension
    print("d=%d measured exponent %.3f (paper: %.3f + eps)"
          % (dimension, exponent, target))
    # The measured growth should be sublinear and in the neighbourhood of
    # the paper's exponent (generously bounded: small inputs, additive t).
    assert exponent < 1.0
    assert exponent < target + 0.35
    # Linear space.
    for num_points in SIZES:
        __, index = build(num_points, dimension)
        assert index.space_blocks <= 8 * blocks(num_points, BLOCK_SIZE)


def test_t1_partition_simplex_queries(benchmark):
    """Remark i: the same tree answers simplex queries output-sensitively."""
    points, index = build(SIZES[-2], 2)
    triangle = Simplex.from_vertices_2d([(-0.4, -0.4), (0.5, -0.2), (0.0, 0.6)])
    expected = {tuple(p) for p in points if triangle.contains(p)}

    def run():
        return index.query_simplex(triangle)

    reported = benchmark(run)
    assert {tuple(p) for p in reported} == expected
    store = index.store
    store.clear_cache()
    before = store.stats.snapshot()
    index.query_simplex(triangle)
    ios = store.stats.delta(before).total
    benchmark.extra_info["simplex_ios"] = ios
    n = blocks(len(points), BLOCK_SIZE)
    print("simplex query: %d I/Os, T=%d, n=%d" % (ios, len(expected), n))
    assert ios < n
