"""Benchmark package: one module per experiment in DESIGN.md's index."""
