"""Shared helpers for the benchmark suite.

Every benchmark prints a plain-text table of *measured I/Os* (the quantity
the paper's Table 1 bounds) in addition to the wall-clock numbers collected
by pytest-benchmark.  EXPERIMENTS.md summarises these tables next to the
paper's claims.
"""

from __future__ import annotations

import math
import os

import pytest

#: Directory where every experiment table is persisted as plain text, so the
#: measured numbers survive pytest's output capturing and can be quoted in
#: EXPERIMENTS.md.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def print_experiment(result) -> None:
    """Print an ExperimentResult table and persist it under benchmarks/results/."""
    table = result.to_table()
    print()
    print("=" * 78)
    print(table)
    print("=" * 78)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    filename = result.experiment_id.replace("/", "_").replace(" ", "_") + ".txt"
    with open(os.path.join(RESULTS_DIR, filename), "w") as handle:
        handle.write(table + "\n")


def blocks(num_records: int, block_size: int) -> int:
    """⌈N/B⌉."""
    return max(1, math.ceil(num_records / block_size))
