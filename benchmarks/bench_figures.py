"""Experiments FIG1, FIG2, FIG3/4/5, FIG6 — the paper's explanatory figures.

The paper's six figures illustrate the machinery rather than report
measurements; each benchmark here regenerates the corresponding quantitative
evidence:

* FIG1 (duality): the transform preserves above/below on random inputs and
  is cheap (Lemma 2.1).
* FIG2 (arrangements and levels): the complexity of a random level between
  k and 2k is O(N) (Lemma 2.2 / Corollary 2.3).
* FIG3/4/5 (clusters of a level): the greedy clustering of Lemma 3.2 has at
  most N/k clusters of at most 3k lines and covers the level.
* FIG6 (balanced simplicial partition): a size-r partition is balanced and
  crossed by O(r^{1-1/d}) cells (Theorem 5.1).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.clustering import greedy_clustering, max_cluster_size
from repro.experiments import format_table, log_fit_exponent
from repro.geometry.arrangement2d import compute_level
from repro.geometry.duality import dual_line_of_point, dual_point_of_line
from repro.geometry.partitions import max_crossing_number, median_cut_partition
from repro.geometry.primitives import Hyperplane, Line2
from repro.workloads import uniform_points


def random_lines(count, seed):
    rng = np.random.default_rng(seed)
    return [Line2(float(s), float(b))
            for s, b in zip(rng.uniform(-2, 2, count), rng.uniform(-1, 1, count))]


def test_fig1_duality_preserves_order(benchmark):
    """FIG1: the duality transform preserves above/below on random pairs."""
    rng = np.random.default_rng(1)
    points = rng.uniform(-10, 10, size=(5000, 2))
    lines = [Line2(float(s), float(b))
             for s, b in rng.uniform(-10, 10, size=(5000, 2))]

    def check():
        mismatches = 0
        for point, line in zip(points, lines):
            primal_above = point[1] > line.y_at(point[0]) + 1e-9
            dual_line = dual_line_of_point(point)
            dual_point = dual_point_of_line(line)
            dual_above = dual_line.y_at(dual_point[0]) > dual_point[1] + 1e-9
            mismatches += primal_above != dual_above
        return mismatches

    mismatches = benchmark(check)
    assert mismatches == 0


def test_fig2_random_level_complexity(benchmark):
    """FIG2 / Lemma 2.2: a random level between k and 2k has O(N) vertices."""
    num_lines = 1500
    lines = random_lines(num_lines, seed=2)
    rng = np.random.default_rng(3)

    def measure():
        complexities = []
        for base in (8, 32, 128):
            k = int(rng.integers(base, 2 * base + 1))
            level = compute_level(lines, k)
            complexities.append((base, k, level.complexity))
        return complexities

    complexities = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[str(base), str(k), str(c), "%.2f" % (c / num_lines)]
            for base, k, c in complexities]
    print()
    print(format_table(["k range base", "k", "level vertices", "vertices / N"],
                       rows, title="FIG2 — random level complexity (Lemma 2.2)"))
    for __, __, complexity in complexities:
        assert complexity <= 8 * num_lines


def test_fig3_greedy_clustering_guarantees(benchmark):
    """FIG3/4/5 / Lemma 3.2: cluster count <= N/k and width <= 3k."""
    num_lines = 1200
    lines = random_lines(num_lines, seed=4)
    k = 24

    def build():
        level = compute_level(lines, k)
        return greedy_clustering(level, width=3 * k)

    clusters = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [[str(num_lines), str(k), str(len(clusters)),
             str(num_lines // k), str(max_cluster_size(clusters)), str(3 * k)]]
    print()
    print(format_table(["N", "k", "#clusters", "N/k bound", "max size", "3k bound"],
                       rows, title="FIG3 — greedy 3k-clustering (Lemma 3.2)"))
    assert len(clusters) <= num_lines // k
    assert max_cluster_size(clusters) <= 3 * k


@pytest.mark.parametrize("dimension", [2, 3])
def test_fig6_partition_crossing_number(benchmark, dimension):
    """FIG6 / Theorem 5.1: crossing number grows like r^{1-1/d}."""
    points = uniform_points(8192, dimension=dimension, seed=5)
    rng = np.random.default_rng(6)
    hyperplanes = [Hyperplane(tuple(rng.uniform(-2, 2, size=dimension - 1).tolist()),
                              float(rng.uniform(-1, 1))) for __ in range(25)]
    sizes = [16, 64, 256]

    def measure():
        crossings = []
        for r in sizes:
            cells = median_cut_partition(points, r)
            crossings.append(max_crossing_number(cells, hyperplanes))
        return crossings

    crossings = benchmark.pedantic(measure, rounds=1, iterations=1)
    exponent = log_fit_exponent(sizes, crossings)
    target = 1.0 - 1.0 / dimension
    rows = [[str(r), str(c), "%.1f" % (r ** target)]
            for r, c in zip(sizes, crossings)]
    print()
    print(format_table(["r", "max crossings", "r^{1-1/d}"], rows,
                       title="FIG6 — crossing numbers, d=%d (measured exponent %.2f,"
                             " target %.2f)" % (dimension, exponent, target)))
    assert exponent < 1.0
    assert all(c < r for r, c in zip(sizes, crossings))
