"""Experiment T1-3D-OPT — Table 1, row 2: the 3-D random-sampling structure.

Paper claim: O(n log2 n) expected blocks of space and O(log_B n + t)
expected query I/Os.  The benchmark measures space against n log2 n and
query I/Os at a fixed output size as N grows (the additive term should stay
nearly flat), plus I/Os as a function of the output size at fixed N (should
be linear in t).  The query batches use three independent copies, as the
paper prescribes for the optimal expectation; the space row uses one copy.
"""

from __future__ import annotations

import math

import pytest

from repro import HalfspaceIndex3D
from repro.experiments import ExperimentResult, log_fit_exponent, run_query_workload
from repro.workloads import halfspace_queries_with_selectivity, uniform_points_ball

from .conftest import blocks, print_experiment

BLOCK_SIZE = 32
SIZES = [1024, 2048, 4096]
FIXED_OUTPUT = 128
NUM_QUERIES = 6

_cache = {}


def build(num_points, copies=3):
    key = (num_points, copies)
    if key not in _cache:
        points = uniform_points_ball(num_points, dimension=3, seed=num_points)
        index = HalfspaceIndex3D(points, block_size=BLOCK_SIZE, copies=copies,
                                 seed=7)
        _cache[key] = (points, index)
    return _cache[key]


@pytest.mark.parametrize("num_points", SIZES)
def test_t1_3d_query_ios(benchmark, num_points):
    """Query I/Os of the 3-D structure at a fixed output size."""
    points, index = build(num_points)
    selectivity = FIXED_OUTPUT / num_points
    queries = halfspace_queries_with_selectivity(points, NUM_QUERIES,
                                                 selectivity, seed=8)
    summary = run_query_workload(index, queries, label="warmup")
    benchmark(lambda: [index.query(q) for q in queries])
    benchmark.extra_info["mean_ios"] = summary.mean_ios
    benchmark.extra_info["mean_t"] = summary.mean_output_blocks
    benchmark.extra_info["space_blocks"] = index.space_blocks


def test_t1_3d_report_table(benchmark):
    """Print the Table-1-row-2 evidence and check the shape of both bounds."""
    # Register with pytest-benchmark so this evidence test also runs
    # under --benchmark-only (it measures I/Os, not wall-clock time).
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = ExperimentResult(
        "T1-3D-OPT", "3-D halfspace queries: O(n log2 n) space, "
                     "O(log_B n + t) expected I/Os")
    fixed_costs = []
    for num_points in SIZES:
        points, index = build(num_points)
        selectivity = FIXED_OUTPUT / num_points
        queries = halfspace_queries_with_selectivity(points, NUM_QUERIES,
                                                     selectivity, seed=8)
        summary = run_query_workload(index, queries,
                                     label="N=%d fixed-T" % num_points)
        fixed_costs.append(summary.mean_ios)
        result.add(summary)
    # Output-size sweep at the largest N.
    points, index = build(SIZES[-1])
    for selectivity in (0.01, 0.05, 0.2):
        queries = halfspace_queries_with_selectivity(points, NUM_QUERIES,
                                                     selectivity, seed=9)
        result.add(run_query_workload(
            index, queries, label="N=%d sel=%g" % (SIZES[-1], selectivity)))
    print_experiment(result)

    growth = log_fit_exponent(SIZES, fixed_costs)
    print("fixed-output growth exponent (want << 2/3):", round(growth, 3))
    assert growth < 0.55

    # Space: within a moderate constant of n log2 n (single copy).
    for num_points in SIZES:
        __, single = build(num_points, copies=1)
        n = blocks(num_points, BLOCK_SIZE)
        budget = 24 * n * max(1.0, math.log2(n))
        print("space N=%d: %d blocks (n log2 n = %d)"
              % (num_points, single.space_blocks, int(n * math.log2(n))))
        assert single.space_blocks <= budget


def test_t1_3d_space_scaling(benchmark):
    """Space of the single-copy structure versus n log2 n."""
    def measure():
        return {n: build(n, copies=1)[1].space_blocks for n in SIZES}
    space = benchmark(measure)
    ratios = [space[n] / (blocks(n, BLOCK_SIZE) * max(1.0, math.log2(blocks(n, BLOCK_SIZE))))
              for n in SIZES]
    benchmark.extra_info["space_over_nlogn"] = ratios
    assert max(ratios) / min(ratios) < 3.0
