"""Tests for the engine-level write path: routed inserts with replica
write-fanout, write metrics, and mutation requests in the async queue."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from conftest import brute_force_halfspace

from repro import LinearConstraint, QueryEngine
from repro.engine import ServingRequest, TenantBudget
from repro.workloads import (
    halfspace_queries_with_selectivity,
    steep_leading_attribute_queries,
    uniform_points,
)

BLOCK_SIZE = 32

EVERYTHING = LinearConstraint(coeffs=(0.0,), offset=1e9)


@pytest.fixture(scope="module")
def points2d():
    return uniform_points(1024, seed=91)


def _replica_answers(shard, constraint=EVERYTHING):
    """Each replica's own answer to a constraint (sorted tuples)."""
    return [sorted(tuple(p) for p in replica.indexes["dynamic"]
                   .query(constraint))
            for replica in shard.replicas]


# ----------------------------------------------------------------------
# plain datasets
# ----------------------------------------------------------------------
def test_plain_dataset_insert_and_delete(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=1)
    engine.register_dataset("d", points2d, kinds=["dynamic", "full_scan"])
    inserted = engine.insert("d", (5.0, 5.0))
    assert inserted.applied and inserted.shard_id == -1 \
        and inserted.replicas == 1
    answer = engine.query("d", EVERYTHING)
    assert (5.0, 5.0) in {tuple(p) for p in answer.points}
    assert answer.count == len(points2d) + 1
    deleted = engine.delete("d", (5.0, 5.0))
    assert deleted.applied
    assert engine.delete("d", (5.0, 5.0)).applied is False   # no-op
    assert engine.query("d", EVERYTHING).count == len(points2d)
    engine.close()


def test_static_suite_rejects_writes_with_clear_message(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=1)
    engine.register_dataset("frozen", points2d,
                            kinds=["partition_tree", "full_scan"])
    with pytest.raises(ValueError, match="kinds including 'dynamic'"):
        engine.insert("frozen", (0.0, 0.0))
    engine.register_sharded_dataset("frozen_sh", points2d, num_shards=2,
                                    kinds=["full_scan"])
    with pytest.raises(ValueError, match="no engine-level writes"):
        engine.delete("frozen_sh", (0.0, 0.0))
    engine.close()


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def test_insert_routes_by_shard_attribute(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=2)
    engine.register_sharded_dataset("sh", points2d, num_shards=4,
                                    sharding="range",
                                    kinds=["dynamic", "full_scan"])
    sharded = engine.catalog.sharded("sh")
    for point in [(-0.99, 0.3), (0.0, -0.4), (0.99, 0.8)]:
        result = engine.insert("sh", point)
        assert result.shard_id == sharded.router.shard_of(point)
        child = sharded.shards[result.shard_id].replicas[0]
        assert tuple(point) in {
            tuple(p) for p in child.indexes["dynamic"].query(EVERYTHING)}
    engine.close()


def test_routed_insert_uses_rebalanced_boundaries(points2d):
    # After a re-split moved the range boundaries, a writer-visible point
    # must land on the shard the *new* quantiles choose — writers never
    # see the old layout.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=3)
    engine.register_sharded_dataset(
        "sh", points2d, num_shards=4, sharding="range",
        kinds=["partition_tree", "full_scan", "dynamic"])
    sharded = engine.catalog.sharded("sh")
    old_boundaries = list(sharded.router.boundaries)
    # Skew the top shard so the re-split shifts every boundary upward.
    rng = np.random.default_rng(4)
    for x in rng.uniform(old_boundaries[-1], 1.0, size=300):
        engine.insert("sh", (float(x), 0.0))
    engine.rebalance("sh")
    new_boundaries = list(sharded.router.boundaries)
    assert new_boundaries[-1] > old_boundaries[-1]
    # A point between the old and new top boundary routes differently now.
    probe = ((old_boundaries[-1] + new_boundaries[-1]) / 2.0, 0.123)
    old_shard = np.searchsorted(old_boundaries, probe[0], side="right")
    result = engine.insert("sh", probe)
    assert result.generation == 1
    assert result.shard_id == sharded.router.shard_of(probe)
    assert result.shard_id != old_shard
    answer = engine.query("sh", EVERYTHING)
    assert tuple(probe) in {tuple(p) for p in answer.points}
    engine.close()


def _probe_into_empty_shard(sharded, seed=6):
    """A point whose routed shard currently holds no replicas."""
    empty_ids = {shard.shard_id for shard in sharded.shards
                 if shard.is_empty}
    assert empty_ids
    rng = np.random.default_rng(seed)
    for __ in range(200):
        probe = tuple(rng.uniform(-1, 1, size=2))
        shard_id = sharded.router.shard_of(probe)
        if shard_id in empty_ids:
            return probe, shard_id
    pytest.fail("no probe point routed to an empty shard")


def test_write_into_an_empty_shard_materializes_it_lazily():
    # Hash-shard a tiny dataset so some shards hold no replicas at all.
    points = uniform_points(3, seed=5)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("tiny", points, num_shards=8,
                                    sharding="hash", kinds=["dynamic"],
                                    replicas=2)
    sharded = engine.catalog.sharded("tiny")
    probe, shard_id = _probe_into_empty_shard(sharded)
    # A delete routed to a still-empty shard stays the documented no-op:
    # deleting an absent point must not build stores.
    result = engine.delete("tiny", probe)
    assert result.applied is False and result.replicas == 0
    assert sharded.shards[shard_id].is_empty
    # The first insert materializes the shard — stores, index suites and
    # replica fan-out appear on demand — and the write applies normally.
    result = engine.insert("tiny", probe)
    assert result.applied is True
    assert result.shard_id == shard_id
    assert result.replicas == 2
    shard = sharded.shards[shard_id]
    assert not shard.is_empty
    assert len(shard.replicas) == 2
    assert _replica_answers(shard)[0] == _replica_answers(shard)[1]
    # The materialized shard serves immediately.
    answer = engine.query("tiny", EVERYTHING)
    assert tuple(probe) in {tuple(p) for p in answer.points}
    # And the point can be deleted again through the same routed path.
    result = engine.delete("tiny", probe)
    assert result.applied is True and result.replicas == 2
    engine.close()


def test_materialized_shard_feeds_stats_exactly_once():
    points = uniform_points(3, seed=5)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("tiny", points, num_shards=8,
                                    sharding="hash", kinds=["dynamic"])
    sharded = engine.catalog.sharded("tiny")
    probe, shard_id = _probe_into_empty_shard(sharded)
    engine.insert("tiny", probe)
    second = (probe[0] * 0.9, probe[1] * 0.9)
    if sharded.router.shard_of(second) == shard_id:
        engine.insert("tiny", second)
        expected = 2
    else:
        expected = 1
    # The materialization hook wires the new replicas exactly once: each
    # logical insert is observed once by the shard's model (a double
    # subscription would count every write twice and skew selectivity).
    shard_model = sharded.shards[shard_id].replicas[0].stats
    assert shard_model.observed_inserts == expected
    assert sharded.stats.observed_inserts == expected
    engine.close()


# ----------------------------------------------------------------------
# replica fan-out (the acceptance criterion)
# ----------------------------------------------------------------------
def test_insert_keeps_all_replicas_serving_and_identical(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=7)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=3, sharding="range",
                                    kinds=["dynamic", "full_scan"])
    sharded = engine.catalog.sharded("sh")
    rng = np.random.default_rng(8)
    extra = rng.uniform(-1, 1, size=(40, 2))
    for point in extra:
        result = engine.insert("sh", point)
        assert result.replicas == 3
        shard = sharded.shards[result.shard_id]
        # All replicas stay queryable — no pinning after writes.
        assert shard.replicas_for_query() == [0, 1, 2]
        # ... and they answer identically (byte-identical copies).
        answers = _replica_answers(shard)
        assert answers[0] == answers[1] == answers[2]
    # Deletes fan out the same way.
    for point in extra[:10]:
        result = engine.delete("sh", point)
        assert result.applied and result.replicas == 3
        answers = _replica_answers(sharded.shards[result.shard_id])
        assert answers[0] == answers[1] == answers[2]
    live = np.concatenate([points2d, extra[10:]])
    for constraint in halfspace_queries_with_selectivity(live, 4, 0.1,
                                                         seed=9):
        answer = engine.query("sh", constraint)
        assert {tuple(p) for p in answer.points} == \
            brute_force_halfspace(live, constraint)
    engine.close()


def test_stats_and_counters_observe_one_logical_mutation_per_fanout(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=10,
                         stats_model="histogram")
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=3, sharding="range",
                                    kinds=["dynamic", "full_scan"])
    sharded = engine.catalog.sharded("sh")
    size_before = sharded.stats.size
    rng = np.random.default_rng(11)
    extra = [tuple(p) for p in rng.uniform(-1, 1, size=(20, 2))]
    per_shard = {shard.shard_id: 0 for shard in sharded.shards}
    for point in extra:
        per_shard[engine.insert("sh", point).shard_id] += 1
    # One observation per *logical* insert, not one per replica — on the
    # global model, each shard's (replica-shared) model, and the
    # rebalance skew counter.
    assert sharded.stats.observed_inserts == len(extra)
    assert sharded.stats.size == size_before + len(extra)
    for shard in sharded.nonempty_shards():
        model = shard.replicas[0].stats
        assert model.observed_inserts == per_shard[shard.shard_id]
        for replica in shard.replicas:        # replicas share one model
            assert replica.stats is model
    assert engine.rebalancer.mutations("sh") == len(extra)
    engine.delete("sh", extra[0])
    assert sharded.stats.observed_deletes == 1
    assert engine.rebalancer.mutations("sh") == len(extra) + 1
    engine.close()


def test_write_metrics_land_in_summary(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=12)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=2, sharding="range",
                                    kinds=["dynamic", "full_scan"])
    engine.insert("sh", (0.1, 0.2))
    engine.insert("sh", (-0.3, 0.4))
    engine.delete("sh", (0.1, 0.2))
    engine.delete("sh", (77.0, 77.0))                # absent: no-op
    writes = engine.summary()["writes"]["sh"]
    assert writes["inserts"] == 2
    assert writes["deletes"] == 1
    assert writes["noop_deletes"] == 1
    assert writes["replica_writes"] == 8             # 4 mutations x 2 replicas
    assert writes["total_ios"] >= 0
    assert writes["latency_s"]["p50"] > 0.0
    assert writes["latency_s"]["p99"] >= writes["latency_s"]["p50"]
    engine.close()


def test_result_cache_invalidates_once_per_logical_write(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=13)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=2, sharding="range",
                                    kinds=["dynamic", "full_scan"])
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.2,
                                                    seed=14)[0]
    engine.query("sh", constraint)
    assert engine.query("sh", constraint).from_result_cache
    core = engine.executor.core
    generation = core.result_generation("sh")
    inside = (0.0, -2.0)
    assert constraint.below(inside)
    engine.insert("sh", inside)
    # One logical write = one invalidation generation bump, not one per
    # replica — and the stale entry is gone.
    assert core.result_generation("sh") == generation + 1
    fresh = engine.query("sh", constraint)
    assert not fresh.from_result_cache
    assert tuple(inside) in {tuple(p) for p in fresh.points}
    engine.close()


# ----------------------------------------------------------------------
# mutations through the async serving path
# ----------------------------------------------------------------------
def test_serve_async_mixes_queries_and_mutations(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=15)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=2, sharding="range",
                                    kinds=["dynamic", "full_scan"])
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.3,
                                                    seed=16)[0]
    inserted = [(0.0, -2.0), (0.5, -2.0), (-0.5, -2.0)]
    assert all(constraint.below(p) for p in inserted)
    requests = [ServingRequest(tenant="writer", dataset="sh", op="insert",
                               point=point) for point in inserted]
    requests.append(ServingRequest(tenant="reader", dataset="sh",
                                   constraint=constraint))
    result = engine.serve_async(requests, max_concurrency=2)
    assert result.outcomes() == {"served": 4}
    for item in result.requests[:3]:
        assert item.mutation is not None and item.mutation.applied
        assert item.mutation.replicas == 2
        assert item.answer is None
    # The wave's writes are all visible to a fresh query afterwards.
    answer = engine.query("sh", constraint)
    reported = {tuple(p) for p in answer.points}
    assert all(tuple(p) in reported for p in inserted)
    engine.close()


def test_async_writes_obey_admission_budget(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=17)
    engine.register_dataset("d", points2d, kinds=["dynamic", "full_scan"])
    cost = engine.executor.core.writes.estimate_ios("d")
    requests = [ServingRequest(tenant="writer", dataset="d", op="insert",
                               point=(float(i), float(i)))
                for i in range(4)]
    budget = TenantBudget(ios_per_s=20.0 * cost, burst=cost,
                          policy="queue")
    result = engine.serve_async(requests, budgets={"writer": budget})
    assert result.outcomes() == {"served": 4}
    # The bucket only holds one write's estimate, so later writes were
    # parked until it refilled — writes obey the same budgets as reads.
    assert sum(item.deferrals for item in result.requests) > 0
    assert engine.summary()["admission"].get("queue", 0) > 0
    assert engine.query("d", EVERYTHING).count == len(points2d) + 4
    engine.close()


def test_async_degrade_policy_rejects_over_budget_writes(points2d):
    # There is no approximate insert: an over-budget write under the
    # "degrade" policy must be rejected (and not applied), never served
    # as a phantom success.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=18)
    engine.register_dataset("d", points2d, kinds=["dynamic", "full_scan"])
    cost = engine.executor.core.writes.estimate_ios("d")
    requests = [ServingRequest(tenant="writer", dataset="d", op="insert",
                               point=(float(i), float(i)))
                for i in range(3)]
    budget = TenantBudget(ios_per_s=1e-6, burst=cost, policy="degrade")
    result = engine.serve_async(requests, budgets={"writer": budget})
    outcomes = result.outcomes()
    assert outcomes.get("served") == 1                # the full bucket
    assert outcomes.get("rejected") == 2              # degrade -> reject
    assert "degraded" not in outcomes
    assert engine.query("d", EVERYTHING).count == len(points2d) + 1
    engine.close()


def test_mutation_requests_validate_their_shape(points2d):
    with pytest.raises(ValueError, match="needs a point"):
        ServingRequest(tenant="t", dataset="d", op="insert")
    with pytest.raises(ValueError, match="needs a constraint"):
        ServingRequest(tenant="t", dataset="d")
    with pytest.raises(ValueError, match="unknown request op"):
        ServingRequest(tenant="t", dataset="d", op="upsert",
                       point=(0.0, 0.0))


def test_concurrent_writes_during_rebalances_are_never_lost(points2d):
    # Race regression: a re-split collects each shard's live points and
    # rebuilds the layout; a write landing in the retiring shards after
    # collection would silently vanish.  The dataset's write barrier
    # serializes route+fanout against the whole collect-swap-rebuild
    # window, so a writer thread hammering inserts while the main thread
    # re-splits repeatedly must lose nothing.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=22)
    engine.register_sharded_dataset(
        "sh", points2d, num_shards=4, sharding="range", replicas=2,
        kinds=["partition_tree", "full_scan", "dynamic"])
    rng = np.random.default_rng(23)
    inserted = [tuple(p) for p in rng.uniform(-1, 1, size=(150, 2))]
    errors = []

    def writer():
        try:
            for point in inserted:
                engine.insert("sh", point)
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    thread = threading.Thread(target=writer)
    thread.start()
    for __ in range(3):
        engine.rebalance("sh")
    thread.join()
    assert not errors
    assert engine.catalog.sharded("sh").generation == 3
    live = np.concatenate([points2d, np.asarray(inserted)])
    final = engine.query("sh", EVERYTHING, clear_cache=True)
    assert final.count == len(live)
    assert sorted(tuple(p) for p in final.points) == \
        sorted(tuple(p) for p in live)
    engine.close()


def test_concurrent_async_reads_during_writes_stay_consistent(points2d):
    # Interleaved queries and routed writes on a replicated shard set:
    # every read must observe a consistent replica state (never a
    # half-applied write), and the final state must be exact.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=19)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=2, sharding="range",
                                    kinds=["dynamic", "full_scan"])
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.4,
                                                    seed=20)[0]
    rng = np.random.default_rng(21)
    inserted = [tuple(p) for p in rng.uniform(-1, 1, size=(12, 2))]
    allowed = {tuple(p) for p in points2d} | set(inserted)
    requests = []
    for i, point in enumerate(inserted):
        requests.append(ServingRequest(tenant="w", dataset="sh",
                                       op="insert", point=point))
        requests.append(ServingRequest(tenant="r", dataset="sh",
                                       constraint=constraint))
    result = engine.serve_async(requests, max_concurrency=4)
    assert result.outcomes() == {"served": len(requests)}
    for item in result.requests:
        if item.request.is_mutation:
            continue
        reported = [tuple(p) for p in item.answer.points]
        # Internally consistent: only satisfying, known points, each a
        # whole logical write (registered base data or a full insert).
        assert len(reported) == len(set(reported))
        assert all(constraint.below(p) for p in reported)
        assert set(reported) <= allowed
        assert set(reported) >= {p for p in map(tuple, points2d)
                                 if constraint.below(p)}
    live = np.concatenate([points2d, np.asarray(inserted)])
    final = engine.query("sh", constraint, clear_cache=True)
    assert {tuple(p) for p in final.points} == \
        brute_force_halfspace(live, constraint)
    engine.close()
