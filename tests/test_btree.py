"""Unit tests for the external B+-tree."""

import pytest

from repro.io.btree import BTree
from repro.io.store import BlockStore


def make_tree(block_size=8, items=None, fanout=None):
    store = BlockStore(block_size=block_size, cache_blocks=0)
    tree = BTree(store, fanout=fanout)
    if items is not None:
        tree.bulk_load(items)
    return store, tree


class TestBulkLoad:
    def test_empty_bulk_load(self):
        __, tree = make_tree(items=[])
        assert len(tree) == 0
        assert tree.search(1) is None

    def test_bulk_load_requires_sorted_input(self):
        store = BlockStore(block_size=8)
        tree = BTree(store)
        with pytest.raises(ValueError):
            tree.bulk_load([(2, "b"), (1, "a")])

    def test_bulk_load_twice_rejected(self):
        __, tree = make_tree(items=[(1, "a")])
        with pytest.raises(ValueError):
            tree.bulk_load([(2, "b")])

    def test_all_keys_searchable_after_bulk_load(self):
        items = [(i, i * 10) for i in range(200)]
        __, tree = make_tree(items=items)
        for key, value in items[::7]:
            assert tree.search(key) == value

    def test_height_grows_logarithmically(self):
        __, small = make_tree(items=[(i, i) for i in range(5)])
        __, large = make_tree(items=[(i, i) for i in range(500)])
        assert small.height <= large.height <= small.height + 4

    def test_items_iterates_in_key_order(self):
        items = [(i, str(i)) for i in range(100)]
        __, tree = make_tree(items=items)
        assert list(tree.items()) == items


class TestSearch:
    def test_search_missing_key(self):
        __, tree = make_tree(items=[(i, i) for i in range(0, 100, 2)])
        assert tree.search(31) is None

    def test_contains(self):
        __, tree = make_tree(items=[(1, "a"), (5, "b")])
        assert tree.contains(5)
        assert not tree.contains(4)

    def test_predecessor_exact_and_between(self):
        __, tree = make_tree(items=[(i * 10, i) for i in range(20)])
        assert tree.predecessor(50) == (50, 5)
        assert tree.predecessor(55) == (50, 5)
        assert tree.predecessor(-1) is None

    def test_successor_exact_and_between(self):
        __, tree = make_tree(items=[(i * 10, i) for i in range(20)])
        assert tree.successor(50) == (50, 5)
        assert tree.successor(55) == (60, 6)
        assert tree.successor(1000) is None

    def test_predecessor_with_negative_infinity_key(self):
        __, tree = make_tree(items=[(float("-inf"), 0), (1.0, 1), (2.0, 2)])
        assert tree.predecessor(0.5) == (float("-inf"), 0)
        assert tree.predecessor(1.5) == (1.0, 1)

    def test_search_io_cost_scales_with_height_not_size(self):
        store, tree = make_tree(block_size=16,
                                items=[(i, i) for i in range(2000)])
        store.reset_stats()
        tree.search(1234)
        assert store.stats.reads <= tree.height + 1


class TestRangeQuery:
    def test_range_query_inclusive_bounds(self):
        __, tree = make_tree(items=[(i, i) for i in range(100)])
        result = tree.range_query(10, 20)
        assert [key for key, __ in result] == list(range(10, 21))

    def test_range_query_empty_when_low_above_high(self):
        __, tree = make_tree(items=[(i, i) for i in range(10)])
        assert tree.range_query(5, 3) == []

    def test_range_query_outside_key_space(self):
        __, tree = make_tree(items=[(i, i) for i in range(10)])
        assert tree.range_query(100, 200) == []

    def test_range_query_io_cost_is_output_sensitive(self):
        store, tree = make_tree(block_size=16,
                                items=[(i, i) for i in range(4000)])
        store.reset_stats()
        small = tree.range_query(100, 110)
        small_cost = store.stats.reads
        store.reset_stats()
        large = tree.range_query(100, 1700)
        large_cost = store.stats.reads
        assert len(small) == 11 and len(large) == 1601
        # The large range reads many more blocks, but only ~T/B more.
        assert large_cost > small_cost
        assert large_cost <= small_cost + (len(large) // tree.fanout) + 3


class TestInsert:
    def test_insert_into_empty_tree(self):
        __, tree = make_tree()
        tree.insert(5, "five")
        assert tree.search(5) == "five"
        assert len(tree) == 1

    def test_insert_many_keys_random_order(self):
        import random
        random.seed(7)
        keys = list(range(300))
        random.shuffle(keys)
        __, tree = make_tree(block_size=8)
        for key in keys:
            tree.insert(key, key * 2)
        assert len(tree) == 300
        for key in range(300):
            assert tree.search(key) == key * 2

    def test_insert_preserves_sorted_iteration(self):
        import random
        random.seed(11)
        keys = random.sample(range(1000), 150)
        __, tree = make_tree(block_size=8)
        for key in keys:
            tree.insert(key, None)
        assert [key for key, __ in tree.items()] == sorted(keys)

    def test_insert_after_bulk_load(self):
        __, tree = make_tree(items=[(i, i) for i in range(0, 100, 2)])
        tree.insert(31, "odd")
        assert tree.search(31) == "odd"
        assert tree.predecessor(32) == (32, 32)

    def test_insert_key_below_current_minimum(self):
        __, tree = make_tree(items=[(10, "a"), (20, "b")])
        tree.insert(1, "new-min")
        assert tree.search(1) == "new-min"
        assert list(tree.items())[0] == (1, "new-min")

    def test_fanout_validation(self):
        store = BlockStore(block_size=8)
        with pytest.raises(ValueError):
            BTree(store, fanout=1)
        with pytest.raises(ValueError):
            BTree(store, fanout=8)   # must leave room for the header record

    def test_space_blocks_reflects_node_count(self):
        __, tree = make_tree(items=[(i, i) for i in range(100)])
        assert tree.space_blocks == tree.num_nodes
        assert tree.space_blocks >= 100 // tree.fanout
