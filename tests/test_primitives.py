"""Unit tests for the geometric primitives and the LinearConstraint query object."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.primitives import EPS, Hyperplane, Line2, LinearConstraint, Plane3

coords = st.floats(min_value=-100, max_value=100, allow_nan=False,
                   allow_infinity=False)


class TestLine2:
    def test_y_at(self):
        line = Line2(slope=2.0, intercept=1.0)
        assert line.y_at(3.0) == 7.0

    def test_below_and_above_point(self):
        line = Line2(slope=0.0, intercept=0.0)
        assert line.is_below_point(0.0, 1.0)
        assert line.is_above_point(0.0, -1.0)
        assert not line.is_below_point(0.0, 0.0)

    def test_passes_through(self):
        line = Line2(slope=1.0, intercept=-1.0)
        assert line.passes_through(2.0, 1.0)
        assert not line.passes_through(2.0, 1.5)

    def test_intersection_of_crossing_lines(self):
        a = Line2(1.0, 0.0)
        b = Line2(-1.0, 2.0)
        x, y = a.intersection(b)
        assert x == pytest.approx(1.0)
        assert y == pytest.approx(1.0)

    def test_intersection_of_parallel_lines_is_infinite(self):
        a = Line2(1.0, 0.0)
        b = Line2(1.0, 5.0)
        assert math.isinf(a.intersection_x(b))

    @given(slope=coords, intercept=coords, x=coords)
    @settings(max_examples=50, deadline=None)
    def test_point_on_line_is_neither_strictly_above_nor_below(self, slope, intercept, x):
        line = Line2(slope, intercept)
        y = line.y_at(x)
        assert not line.is_below_point(x, y)
        assert not line.is_above_point(x, y)


class TestPlane3:
    def test_z_at(self):
        plane = Plane3(1.0, 2.0, 3.0)
        assert plane.z_at(1.0, 1.0) == 6.0

    def test_below_above_point(self):
        plane = Plane3(0.0, 0.0, 0.0)
        assert plane.is_below_point(0.0, 0.0, 1.0)
        assert plane.is_above_point(0.0, 0.0, -1.0)

    def test_coefficients_roundtrip(self):
        plane = Plane3(1.5, -2.5, 0.25)
        assert plane.coefficients() == (1.5, -2.5, 0.25)


class TestHyperplane:
    def test_dimension(self):
        assert Hyperplane((1.0,), 0.0).dimension == 2
        assert Hyperplane((1.0, 2.0, 3.0), 0.0).dimension == 4

    def test_height_at_uses_leading_coordinates(self):
        hyperplane = Hyperplane((1.0, 2.0), 3.0)
        assert hyperplane.height_at((1.0, 1.0, 99.0)) == 6.0

    def test_point_below_is_inclusive(self):
        hyperplane = Hyperplane((0.0,), 0.0)
        assert hyperplane.point_below((5.0, 0.0))
        assert hyperplane.point_below((5.0, -1.0))
        assert not hyperplane.point_below((5.0, 1.0))

    def test_as_line2_and_as_plane3(self):
        assert Hyperplane((2.0,), 1.0).as_line2() == Line2(2.0, 1.0)
        assert Hyperplane((1.0, 2.0), 3.0).as_plane3() == Plane3(1.0, 2.0, 3.0)

    def test_as_line2_wrong_dimension(self):
        with pytest.raises(ValueError):
            Hyperplane((1.0, 2.0), 0.0).as_line2()

    def test_as_plane3_wrong_dimension(self):
        with pytest.raises(ValueError):
            Hyperplane((1.0,), 0.0).as_plane3()


class TestLinearConstraint:
    def test_below_matches_hyperplane(self):
        constraint = LinearConstraint(coeffs=(10.0,), offset=0.0)
        # The SQL example: PricePerShare <= 10 * EarningsPerShare.
        assert constraint.below((2.0, 15.0))
        assert not constraint.below((1.0, 15.0))

    def test_filter_returns_satisfying_points(self):
        constraint = LinearConstraint(coeffs=(0.0,), offset=0.5)
        points = [(0.0, 0.0), (0.0, 1.0), (1.0, 0.4)]
        assert constraint.filter(points) == [(0.0, 0.0), (1.0, 0.4)]

    def test_dimension(self):
        assert LinearConstraint(coeffs=(1.0, 2.0), offset=0.0).dimension == 3

    def test_from_inequality_normalises(self):
        # 3x - 2y <= 6  ->  y >= (3x - 6)/2 is an upper halfspace: rejected.
        with pytest.raises(ValueError):
            LinearConstraint.from_inequality((3.0, -2.0), 6.0)
        # 3x + 2y <= 6  ->  y <= -1.5x + 3.
        constraint = LinearConstraint.from_inequality((3.0, 2.0), 6.0)
        assert constraint.coeffs[0] == pytest.approx(-1.5)
        assert constraint.offset == pytest.approx(3.0)

    def test_from_inequality_rejects_zero_last_coefficient(self):
        with pytest.raises(ValueError):
            LinearConstraint.from_inequality((1.0, 0.0), 1.0)

    def test_from_inequality_rejects_empty(self):
        with pytest.raises(ValueError):
            LinearConstraint.from_inequality((), 1.0)

    @given(a=coords, b=coords, x=coords, y=coords)
    @settings(max_examples=50, deadline=None)
    def test_below_agrees_with_direct_evaluation(self, a, b, x, y):
        constraint = LinearConstraint(coeffs=(a,), offset=b)
        assert constraint.below((x, y)) == (y <= a * x + b + EPS)
