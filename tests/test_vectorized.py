"""Scalar/vector kernel parity: the vectorized hot path must be invisible.

The batch kernels promise two things: answers identical to the original
record-at-a-time loops (including points exactly on a query boundary),
and bit-identical I/O counters (vectorization happens strictly on the
memory side of the BlockStore accounting seam).  These tests sweep
dimensions 2–5, duplicate points, on-hyperplane boundary values, empty
blocks, and every storage backend, asserting both properties.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import FullScanIndex, KDBTreeIndex, RTreeIndex
from repro.core import (ConstraintConjunction, PartitionTreeIndex,
                        query_conjunction, scalar_kernels,
                        set_vectorized, vectorized_enabled)
from repro.core import kernels
from repro.geometry.primitives import EPS, Hyperplane, LinearConstraint
from repro.geometry.simplex import Halfspace, Simplex
from repro.io.block import BlockPayload, as_point_matrix, matrix_to_records
from repro.io.backend import FileBackend, MemoryBackend, MmapBackend
from repro.io.disk_array import DiskArray
from repro.io.store import BlockStore


def make_cloud(dimension, count, seed, with_boundary=None):
    """A float-tuple cloud; optionally with points EXACTLY on a boundary."""
    rng = np.random.default_rng(seed)
    points = rng.uniform(-1.0, 1.0, size=(count, dimension))
    records = [tuple(float(v) for v in row) for row in points]
    if with_boundary is not None:
        hyperplane = with_boundary.hyperplane
        for row in points[: max(3, count // 10)]:
            prefix = tuple(float(v) for v in row[:-1])
            # Place the last coordinate exactly at the scalar height, so
            # the point sits on the hyperplane to the last bit.
            height = hyperplane.height_at(prefix + (0.0,))
            records.append(prefix + (height,))
            records.append(prefix + (height + EPS,))      # still inside
            records.append(prefix + (height + 3 * EPS,))  # just outside
    # Duplicates exercise multiset behaviour.
    records.extend(records[: max(2, len(records) // 8)])
    return records


def constraint_for(dimension, seed):
    rng = np.random.default_rng(seed + 100)
    coeffs = tuple(float(v) for v in rng.uniform(-1.0, 1.0, dimension - 1))
    return LinearConstraint(coeffs=coeffs, offset=float(rng.uniform(-0.5, 0.5)))


# ----------------------------------------------------------------------
# predicate-level parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dimension", [2, 3, 4, 5])
def test_below_many_matches_scalar_below(dimension):
    constraint = constraint_for(dimension, dimension)
    records = make_cloud(dimension, 64, dimension, with_boundary=constraint)
    matrix = as_point_matrix(records)
    assert matrix is not None and matrix.shape == (len(records), dimension)
    mask = constraint.below_many(matrix)
    scalar = np.array([constraint.below(record) for record in records])
    assert np.array_equal(mask, scalar)
    filtered = kernels.matrix_rows(constraint.filter_many(matrix))
    assert filtered == constraint.filter(records)


@pytest.mark.parametrize("dimension", [2, 3, 4, 5])
def test_hyperplane_height_many_bit_exact(dimension):
    constraint = constraint_for(dimension, 7 * dimension)
    hyperplane = constraint.hyperplane
    records = make_cloud(dimension, 48, 7 * dimension)
    matrix = as_point_matrix(records)
    heights = hyperplane.height_many(matrix)
    for row, batch_height in zip(records, heights):
        # Bit-exact, not approximately equal: the batch kernel replays
        # the scalar accumulation order.
        assert float(batch_height) == hyperplane.height_at(row)


def test_below_many_empty_matrix():
    constraint = constraint_for(3, 1)
    empty = np.empty((0, 3), dtype=float)
    assert constraint.below_many(empty).shape == (0,)
    assert constraint.filter_many(empty).shape == (0, 3)


@pytest.mark.parametrize("dimension", [2, 3, 4])
def test_simplex_contains_many_matches_scalar(dimension):
    rng = np.random.default_rng(dimension)
    halfspaces = []
    for __ in range(dimension + 1):
        normal = tuple(float(v) for v in rng.uniform(-1.0, 1.0, dimension))
        halfspaces.append(Halfspace(normal=normal,
                                    offset=float(rng.uniform(0.0, 1.0))))
    simplex = Simplex(halfspaces=tuple(halfspaces))
    records = make_cloud(dimension, 80, dimension + 50)
    matrix = as_point_matrix(records)
    mask = simplex.contains_many(matrix)
    scalar = np.array([simplex.contains(record) for record in records])
    assert np.array_equal(mask, scalar)


def test_simplex_boundary_points_resolve_identically():
    # Points exactly on a facet: normal . x == offset must be inside.
    simplex = Simplex(halfspaces=(Halfspace(normal=(1.0, 0.0), offset=0.5),
                                  Halfspace(normal=(0.0, 1.0), offset=0.5)))
    records = [(0.5, 0.0), (0.0, 0.5), (0.5, 0.5), (0.5 + EPS, 0.0),
               (0.5 + 3e-9, 0.0), (-0.2, -0.9)]
    matrix = as_point_matrix(records)
    mask = simplex.contains_many(matrix)
    scalar = np.array([simplex.contains(record) for record in records])
    assert np.array_equal(mask, scalar)


@pytest.mark.parametrize("dimension", [2, 4])
def test_conjunction_satisfied_many_matches_scalar(dimension):
    first = constraint_for(dimension, 11)
    second = constraint_for(dimension, 23)
    conjunction = ConstraintConjunction.of(first, second).and_halfspace(
        normal=(1.0,) + (0.0,) * (dimension - 1), offset=0.6)
    records = make_cloud(dimension, 90, 31, with_boundary=first)
    matrix = as_point_matrix(records)
    mask = conjunction.satisfied_many(matrix)
    scalar = np.array([conjunction.satisfied_by(record) for record in records])
    assert np.array_equal(mask, scalar)


# ----------------------------------------------------------------------
# columnar payloads
# ----------------------------------------------------------------------
def test_as_point_matrix_rejects_non_point_blocks():
    assert as_point_matrix([]) is None
    assert as_point_matrix(["text", "more"]) is None
    assert as_point_matrix([(1, 2)]) is None                # ints, not floats
    assert as_point_matrix([(1.0, 2.0), (1.0,)]) is None    # ragged widths
    assert as_point_matrix([(1.0, (2.0,))]) is None         # nested
    assert as_point_matrix([[1.0, 2.0]]) is None            # list, not tuple


def test_as_point_matrix_round_trips():
    records = [(0.1, -2.5), (float("inf"), 0.0), (1e-300, 1e300)]
    matrix = as_point_matrix(records)
    assert matrix is not None
    assert not matrix.flags.writeable
    assert matrix_to_records(matrix) == records


def test_block_payload_requires_one_representation():
    with pytest.raises(ValueError):
        BlockPayload()
    payload = BlockPayload(matrix=np.asarray([[1.0, 2.0]]))
    assert payload.is_columnar and len(payload) == 1
    assert payload.records() == [(1.0, 2.0)]


@pytest.mark.parametrize("backend_factory",
                         [MemoryBackend, FileBackend, MmapBackend])
def test_point_blocks_round_trip_every_backend(backend_factory):
    backend = backend_factory()
    try:
        points = [(0.5, -1.25, 3.0), (2.0, 0.0, -7.5)]
        mixed = [(1.0, 2.0), "a string", (3, 4)]
        backend.put(1, points)
        backend.put(2, mixed)
        assert backend.get(1) == points
        assert backend.get(2) == mixed
        records, matrix = backend.get_payload(1)
        assert records is None and matrix is not None
        assert matrix_to_records(matrix) == points
        records, matrix = backend.get_payload(2)
        assert matrix is None and records == mixed
    finally:
        backend.close()


@pytest.mark.parametrize("backend", ["memory", "file", "mmap"])
def test_payload_reads_charge_identically_to_record_reads(backend):
    points = [(float(i), float(-i)) for i in range(32)]
    store_a = BlockStore(block_size=8, cache_blocks=2, backend=backend)
    store_b = BlockStore(block_size=8, cache_blocks=2, backend=backend)
    try:
        array_a = DiskArray(store_a, points)
        array_b = DiskArray(store_b, points)
        store_a.reset_stats()
        store_b.reset_stats()
        scalar = list(array_a.scan())
        batched = []
        for payload in array_b.scan_batches():
            batched.extend(tuple(row) for row in payload.matrix.tolist())
        assert batched == scalar
        # Run both a second time so buffer-pool hits are exercised too.
        list(array_a.scan())
        list(array_b.scan_batches())
        for field in ("reads", "writes", "cache_hits"):
            assert getattr(store_a.stats, field) == \
                getattr(store_b.stats, field)
    finally:
        store_a.close()
        store_b.close()


def test_mmap_zero_copy_matrix_detached_from_mapping():
    store = BlockStore(block_size=4, cache_blocks=0, backend="mmap")
    try:
        array = DiskArray(store, [(float(i), 1.0) for i in range(8)])
        payloads = list(array.scan_batches())
        matrices = [payload.matrix for payload in payloads]
    finally:
        store.close()
    # The mapping is closed; the matrices must stay readable (they were
    # copied out under the lock, not left as live mmap views).
    total = sum(float(matrix[:, 0].sum()) for matrix in matrices)
    assert total == sum(range(8))


# ----------------------------------------------------------------------
# index-level parity: answers AND IOStats
# ----------------------------------------------------------------------
def index_cases(points, block_size=16):
    yield FullScanIndex(points, block_size=block_size)
    yield PartitionTreeIndex(points, block_size=block_size)
    yield KDBTreeIndex(points, block_size=block_size)
    yield RTreeIndex(points, block_size=block_size)


@pytest.mark.parametrize("dimension", [2, 3])
def test_index_answers_and_ios_identical_both_paths(dimension):
    constraint = constraint_for(dimension, 5)
    records = make_cloud(dimension, 300, 5, with_boundary=constraint)
    points = np.asarray(records, dtype=float)
    for index in index_cases(records if dimension != 2 else points):
        store = index.store
        store.clear_cache()
        store.reset_stats()
        vector_answer = sorted(index.query(constraint))
        vector_ios = store.stats.snapshot()
        store.clear_cache()
        store.reset_stats()
        with scalar_kernels():
            scalar_answer = sorted(index.query(constraint))
        scalar_ios = store.stats.snapshot()
        name = type(index).__name__
        assert vector_answer == scalar_answer, name
        assert vector_ios.reads == scalar_ios.reads, name
        assert vector_ios.writes == scalar_ios.writes, name
        assert vector_ios.cache_hits == scalar_ios.cache_hits, name


def test_partition_tree_simplex_parity():
    rng = np.random.default_rng(17)
    points = rng.uniform(-1.0, 1.0, size=(400, 2))
    index = PartitionTreeIndex(points, block_size=16)
    simplex = Simplex.from_vertices_2d([(-0.8, -0.8), (0.9, -0.5), (0.0, 0.9)])
    store = index.store
    store.clear_cache()
    store.reset_stats()
    vector = sorted(index.query_simplex(simplex))
    vector_ios = store.stats.snapshot()
    store.clear_cache()
    store.reset_stats()
    with scalar_kernels():
        scalar = sorted(index.query_simplex(simplex))
    scalar_ios = store.stats.snapshot()
    assert vector == scalar
    assert vector_ios.reads == scalar_ios.reads
    assert vector_ios.cache_hits == scalar_ios.cache_hits
    expected = sorted(tuple(p) for p in points if simplex.contains(p))
    assert vector == expected


def test_conjunction_fallback_filter_parity():
    rng = np.random.default_rng(19)
    points = rng.uniform(-1.0, 1.0, size=(256, 2))
    index = FullScanIndex(points, block_size=16)
    conjunction = ConstraintConjunction.of(
        LinearConstraint(coeffs=(0.4,), offset=0.2),
        LinearConstraint(coeffs=(-0.7,), offset=0.5))
    vector = sorted(query_conjunction(index, conjunction))
    with scalar_kernels():
        scalar = sorted(query_conjunction(index, conjunction))
    assert vector == scalar
    expected = sorted(tuple(p) for p in points
                      if conjunction.satisfied_by(tuple(p)))
    assert vector == expected


def test_vector_results_are_json_serializable():
    rng = np.random.default_rng(3)
    points = rng.uniform(-1.0, 1.0, size=(64, 2))
    index = FullScanIndex(points, block_size=8)
    answer = index.query(LinearConstraint(coeffs=(0.2,), offset=0.3))
    assert answer
    for record in answer:
        assert type(record) is tuple
        assert all(type(value) is float for value in record)
    json.dumps(answer)


def test_scalar_kernels_toggle_restores_state():
    assert vectorized_enabled()
    with scalar_kernels():
        assert not vectorized_enabled()
        with scalar_kernels():
            assert not vectorized_enabled()
        assert not vectorized_enabled()
    assert vectorized_enabled()
    previous = set_vectorized(False)
    assert previous is True
    assert not vectorized_enabled()
    set_vectorized(True)
    assert vectorized_enabled()


def test_kernels_fall_back_on_non_point_blocks():
    store = BlockStore(block_size=4, cache_blocks=0)
    # First block columnar; second block mixes int tuples and ragged
    # widths, so it must take the scalar fallback (per block).
    array = DiskArray(store, [(0.1, 0.2), (0.3, -0.4), (0.5, 0.6),
                              (0.7, -0.8)])
    array.extend([(1, -2), (0.0, 0.0), (0.25, -0.5, 9.0), (-1, -1)])
    constraint = LinearConstraint(coeffs=(0.0,), offset=0.0)
    with scalar_kernels():
        expected = [r for r in array.scan() if constraint.below(r)]
    got = kernels.filter_constraint(array, constraint)
    assert got == expected
    # Fallback records keep their exact original form (ints stay ints).
    assert (1, -2) in got and (-1, -1) in got
    store.close()


# ----------------------------------------------------------------------
# FullScanIndex dimension handling (satellite)
# ----------------------------------------------------------------------
def test_full_scan_empty_requires_dimension():
    with pytest.raises(ValueError, match="dimension"):
        FullScanIndex([])


def test_full_scan_empty_with_dimension():
    index = FullScanIndex([], dimension=4)
    assert index.dimension == 4
    assert index.size == 0
    assert index.query(constraint_for(4, 2)) == []


def test_full_scan_dimension_mismatch_rejected():
    with pytest.raises(ValueError, match="dimension"):
        FullScanIndex([(1.0, 2.0)], dimension=3)


def test_full_scan_dimension_consistent_accepted():
    index = FullScanIndex([(1.0, 2.0, 3.0)], dimension=3)
    assert index.dimension == 3
