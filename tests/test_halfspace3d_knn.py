"""Tests for the 3-D structures of Section 4: k-lowest planes, halfspace, k-NN."""

import math

import numpy as np
import pytest

from repro.core.halfspace3d import HalfspaceIndex3D
from repro.core.knn import KNNIndex
from repro.core.lowest_planes import LowestPlanesIndex
from repro.geometry.primitives import LinearConstraint, Plane3
from repro.workloads import (
    halfspace_queries_with_selectivity,
    uniform_points,
    uniform_points_ball,
)

from conftest import brute_force_halfspace


def random_planes(count, seed):
    rng = np.random.default_rng(seed)
    return [Plane3(*row) for row in rng.uniform(-1, 1, size=(count, 3))]


@pytest.fixture(scope="module")
def planes_index():
    planes = random_planes(800, seed=1)
    return planes, LowestPlanesIndex(planes, block_size=32, seed=2)


@pytest.fixture(scope="module")
def halfspace_index():
    points = uniform_points_ball(1200, dimension=3, seed=3)
    return points, HalfspaceIndex3D(points, block_size=32, seed=4)


@pytest.fixture(scope="module")
def knn_index():
    points = uniform_points(1000, seed=5)
    return points, KNNIndex(points, block_size=32, seed=6)


class TestLowestPlanes:
    def test_k_lowest_matches_brute_force(self, planes_index):
        planes, index = planes_index
        rng = np.random.default_rng(7)
        for __ in range(10):
            x, y = rng.uniform(-1, 1, size=2)
            k = int(rng.integers(1, 60))
            result = index.k_lowest(float(x), float(y), k)
            heights = sorted((p.z_at(x, y), i) for i, p in enumerate(planes))
            expected = [i for __, i in heights[:k]]
            assert [i for i, __ in result] == expected

    def test_k_zero_and_negative(self, planes_index):
        __, index = planes_index
        assert index.k_lowest(0.0, 0.0, 0) == []
        assert index.k_lowest(0.0, 0.0, -3) == []

    def test_k_larger_than_n_is_clamped(self, planes_index):
        planes, index = planes_index
        result = index.k_lowest(0.1, 0.2, len(planes) + 50)
        assert len(result) == len(planes)

    def test_result_heights_are_sorted(self, planes_index):
        __, index = planes_index
        result = index.k_lowest(0.3, -0.4, 25)
        heights = [h for __, h in result]
        assert heights == sorted(heights)

    def test_planes_below_point_matches_brute_force(self, planes_index):
        planes, index = planes_index
        rng = np.random.default_rng(8)
        for __ in range(8):
            x, y, z = rng.uniform(-1, 1, size=3)
            expected = {i for i, p in enumerate(planes)
                        if p.z_at(x, y) <= z + 1e-9}
            assert set(index.planes_below_point(float(x), float(y), float(z))) == expected

    def test_empty_index(self):
        index = LowestPlanesIndex([], block_size=16)
        assert index.k_lowest(0.0, 0.0, 5) == []
        assert index.planes_below_point(0.0, 0.0, 0.0) == []

    def test_space_is_near_linear(self, planes_index):
        planes, index = planes_index
        n = math.ceil(len(planes) / 32)
        log_factor = max(1.0, math.log2(n))
        # O(n log2 n) with a moderate constant (conflict-list duplication).
        assert index.space_blocks <= 16 * n * log_factor

    def test_copies_rejects_zero(self):
        with pytest.raises(ValueError):
            LowestPlanesIndex(random_planes(10, seed=9), copies=0)

    def test_query_outside_domain_falls_back_but_stays_correct(self, planes_index):
        planes, index = planes_index
        x, y = 50.0, -75.0    # far outside the default domain
        result = index.k_lowest(x, y, 5)
        heights = sorted((p.z_at(x, y), i) for i, p in enumerate(planes))
        assert [i for i, __ in result] == [i for __, i in heights[:5]]


class TestHalfspace3D:
    def test_matches_ground_truth(self, halfspace_index):
        points, index = halfspace_index
        queries = halfspace_queries_with_selectivity(points, 6, 0.05, seed=10)
        queries += halfspace_queries_with_selectivity(points, 4, 0.3, seed=11)
        for constraint in queries:
            expected = brute_force_halfspace(points, constraint)
            actual = {tuple(p) for p in index.query(constraint)}
            assert actual == expected

    def test_empty_and_full_queries(self, halfspace_index):
        points, index = halfspace_index
        nothing = LinearConstraint((0.0, 0.0), -10.0)
        everything = LinearConstraint((0.0, 0.0), 10.0)
        assert index.query(nothing) == []
        assert len(index.query(everything)) == len(points)

    def test_rejects_wrong_dimension(self, halfspace_index):
        __, index = halfspace_index
        with pytest.raises(ValueError):
            index.query(LinearConstraint((1.0,), 0.0))

    def test_rejects_wrong_shape_points(self):
        with pytest.raises(ValueError):
            HalfspaceIndex3D(np.zeros((4, 2)))

    def test_small_query_beats_full_scan(self, halfspace_index):
        points, index = halfspace_index
        constraint = halfspace_queries_with_selectivity(points, 1, 0.01, seed=12)[0]
        result = index.query_with_stats(constraint)
        n = math.ceil(len(points) / index.block_size)
        assert result.total_ios < n

    def test_queries_do_not_write(self, halfspace_index):
        points, index = halfspace_index
        constraint = halfspace_queries_with_selectivity(points, 1, 0.1, seed=13)[0]
        assert index.query_with_stats(constraint).ios.writes == 0

    def test_empty_index(self):
        index = HalfspaceIndex3D(np.zeros((0, 3)), block_size=16)
        assert index.query(LinearConstraint((0.0, 0.0), 0.0)) == []

    def test_three_copies_still_correct(self):
        points = uniform_points_ball(400, dimension=3, seed=14)
        index = HalfspaceIndex3D(points, block_size=32, copies=3, seed=15)
        constraint = halfspace_queries_with_selectivity(points, 1, 0.2, seed=16)[0]
        assert {tuple(p) for p in index.query(constraint)} == \
            brute_force_halfspace(points, constraint)


class TestKNN:
    def brute_nearest(self, points, query, k):
        d = np.hypot(points[:, 0] - query[0], points[:, 1] - query[1])
        return [tuple(points[i]) for i in np.argsort(d)[:k]]

    def test_nearest_matches_brute_force(self, knn_index):
        points, index = knn_index
        rng = np.random.default_rng(17)
        for __ in range(10):
            query = tuple(rng.uniform(-1, 1, size=2))
            k = int(rng.integers(1, 40))
            assert index.nearest(query, k) == self.brute_nearest(points, query, k)

    def test_nearest_with_distances_sorted(self, knn_index):
        points, index = knn_index
        pairs = index.nearest_with_distances((0.2, 0.3), 15)
        distances = [d for __, d in pairs]
        assert distances == sorted(distances)

    def test_k_zero(self, knn_index):
        __, index = knn_index
        assert index.nearest((0.0, 0.0), 0) == []

    def test_k_exceeds_n(self, knn_index):
        points, index = knn_index
        assert len(index.nearest((0.0, 0.0), len(points) + 10)) == len(points)

    def test_io_cost_grows_with_k_but_stays_blocked(self, knn_index):
        points, index = knn_index
        __, small = index.nearest_with_stats((0.1, 0.1), 1)
        __, large = index.nearest_with_stats((0.1, 0.1), 256)
        n = math.ceil(len(points) / index.block_size)
        assert small.total <= large.total
        assert large.total <= 4 * n    # never much worse than a couple of scans

    def test_empty_index(self):
        index = KNNIndex(np.zeros((0, 2)), block_size=16)
        assert index.nearest((0.0, 0.0), 3) == []

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            KNNIndex(np.zeros((5, 3)))

    def test_query_point_coincides_with_data_point(self, knn_index):
        points, index = knn_index
        query = tuple(points[17])
        nearest = index.nearest(query, 1)
        assert nearest[0] == pytest.approx(query)
