"""Unit tests for DiskArray and the external merge sort."""

import pytest

from repro.io.disk_array import DiskArray
from repro.io.external_sort import external_merge_sort
from repro.io.store import BlockStore


class TestDiskArray:
    def test_empty_array(self, store):
        array = DiskArray(store)
        assert len(array) == 0
        assert array.num_blocks == 0
        assert list(array.scan()) == []

    def test_construction_from_records(self, store):
        array = DiskArray(store, list(range(20)))
        assert len(array) == 20
        assert array.num_blocks == 3          # block size 8 -> ceil(20/8)
        assert array.read_all() == list(range(20))

    def test_append_fills_last_block_before_allocating(self, store):
        array = DiskArray(store, list(range(7)))
        assert array.num_blocks == 1
        array.append(7)
        assert array.num_blocks == 1
        array.append(8)
        assert array.num_blocks == 2

    def test_extend_after_partial_block(self, store):
        array = DiskArray(store, [0, 1, 2])
        array.extend(range(3, 12))
        assert array.read_all() == list(range(12))
        assert array.num_blocks == 2

    def test_getitem_random_access(self, store):
        array = DiskArray(store, list(range(25)))
        assert array[0] == 0
        assert array[13] == 13
        assert array[-1] == 24

    def test_getitem_out_of_range(self, store):
        array = DiskArray(store, [1, 2, 3])
        with pytest.raises(IndexError):
            array[3]

    def test_read_range_spans_blocks(self, store):
        array = DiskArray(store, list(range(30)))
        assert array.read_range(5, 20) == list(range(5, 20))
        assert array.read_range(0, 0) == []

    def test_read_range_invalid_bounds(self, store):
        array = DiskArray(store, list(range(10)))
        with pytest.raises(IndexError):
            array.read_range(5, 20)

    def test_scan_costs_one_read_per_block(self, store_nocache):
        array = DiskArray(store_nocache, list(range(24)))
        store_nocache.reset_stats()
        list(array.scan())
        assert store_nocache.stats.reads == 3

    def test_clear_frees_all_blocks(self, store):
        array = DiskArray(store, list(range(20)))
        blocks_before = store.num_blocks
        array.clear()
        assert store.num_blocks == blocks_before - 3
        assert len(array) == 0

    def test_iteration_matches_scan(self, store):
        array = DiskArray(store, list(range(10)))
        assert list(array) == list(array.scan())

    def test_read_block_returns_single_block(self, store):
        array = DiskArray(store, list(range(10)))
        assert array.read_block(1) == [8, 9]

    def test_read_range_touches_only_covered_blocks(self, store_nocache):
        # Block size 8: records 0..39 live in blocks [0..7][8..15][16..23]...
        array = DiskArray(store_nocache, list(range(40)))
        store_nocache.reset_stats()
        assert array.read_range(10, 14) == list(range(10, 14))
        assert store_nocache.stats.reads == 1      # inside one block
        store_nocache.reset_stats()
        assert array.read_range(5, 20) == list(range(5, 20))
        assert store_nocache.stats.reads == 3      # blocks 0, 1, 2
        store_nocache.reset_stats()
        assert array.read_range(8, 16) == list(range(8, 16))
        assert store_nocache.stats.reads == 1      # exactly block 1

    def test_read_range_block_aligned_and_edges(self, store):
        array = DiskArray(store, list(range(30)))
        assert array.read_range(0, 30) == list(range(30))
        assert array.read_range(0, 8) == list(range(8))
        assert array.read_range(24, 30) == list(range(24, 30))
        assert array.read_range(7, 9) == [7, 8]

    def test_scan_batches_matches_scan(self, store):
        points = [(float(i), float(i * 2)) for i in range(20)]
        array = DiskArray(store, points)
        batched = []
        for payload in array.scan_batches():
            assert payload.is_columnar
            batched.extend(tuple(row) for row in payload.matrix.tolist())
        assert batched == list(array.scan())

    def test_scan_batches_same_ios_as_scan(self, store_nocache):
        points = [(float(i), float(i)) for i in range(24)]
        array = DiskArray(store_nocache, points)
        store_nocache.reset_stats()
        list(array.scan())
        scalar = store_nocache.stats.snapshot()
        store_nocache.reset_stats()
        list(array.scan_batches())
        assert store_nocache.stats.reads == scalar.reads
        assert store_nocache.stats.cache_hits == scalar.cache_hits

    def test_scan_batches_non_point_records_fall_back(self, store):
        array = DiskArray(store, ["a", "b", "c"])
        payloads = list(array.scan_batches())
        assert len(payloads) == 1
        assert not payloads[0].is_columnar
        assert payloads[0].records() == ["a", "b", "c"]

    def test_read_all_array_stacks_blocks(self, store):
        points = [(float(i), -float(i)) for i in range(20)]
        array = DiskArray(store, points)
        matrix = array.read_all_array()
        assert matrix is not None
        assert matrix.shape == (20, 2)
        assert [tuple(row) for row in matrix.tolist()] == points

    def test_read_all_array_mixed_records_returns_none(self, store):
        array = DiskArray(store, [(1.0, 2.0)] * 8 + ["not a point"])
        assert array.read_all_array() is None
        assert array.read_all() == [(1.0, 2.0)] * 8 + ["not a point"]

    def test_read_all_array_empty(self, store):
        assert DiskArray(store).read_all_array() is None


class TestExternalSort:
    def test_sort_small_input(self, store):
        data = DiskArray(store, [5, 3, 8, 1, 9, 2])
        result = external_merge_sort(store, data)
        assert result.read_all() == [1, 2, 3, 5, 8, 9]

    def test_sort_empty_input(self, store):
        data = DiskArray(store)
        result = external_merge_sort(store, data)
        assert len(result) == 0

    def test_sort_with_key(self, store):
        data = DiskArray(store, [(1, "b"), (2, "a"), (0, "c")])
        result = external_merge_sort(store, data, key=lambda r: r[1])
        assert [r[1] for r in result.read_all()] == ["a", "b", "c"]

    def test_sort_large_input_needs_multiple_merge_rounds(self):
        store = BlockStore(block_size=4, cache_blocks=0)
        values = list(range(200))[::-1]
        data = DiskArray(store, values)
        result = external_merge_sort(store, data, memory_blocks=2)
        assert result.read_all() == sorted(values)

    def test_sort_preserves_duplicates(self, store):
        data = DiskArray(store, [3, 1, 3, 1, 3])
        result = external_merge_sort(store, data)
        assert result.read_all() == [1, 1, 3, 3, 3]

    def test_sort_rejects_tiny_memory(self, store):
        data = DiskArray(store, [1, 2])
        with pytest.raises(ValueError):
            external_merge_sort(store, data, memory_blocks=1)

    def test_sort_input_left_intact(self, store):
        data = DiskArray(store, [3, 1, 2])
        external_merge_sort(store, data)
        assert data.read_all() == [3, 1, 2]

    def test_sorted_input_stays_sorted(self, store):
        data = DiskArray(store, list(range(50)))
        result = external_merge_sort(store, data, memory_blocks=3)
        assert result.read_all() == list(range(50))
