"""Tests for the workload generators and the experiment harness."""

import numpy as np
import pytest

from repro.core.halfplane2d import HalfplaneIndex2D
from repro.experiments.harness import (
    ExperimentResult,
    QueryCostSummary,
    format_table,
    log_fit_exponent,
    run_query_workload,
)
from repro.geometry.primitives import LinearConstraint
from repro.workloads import (
    clustered_points,
    diagonal_points,
    gaussian_points,
    halfspace_queries_with_selectivity,
    random_halfspace_queries,
    rotated_diagonal_query,
    uniform_points,
    uniform_points_ball,
)
from repro.workloads.distributions import company_table, grid_points
from repro.workloads.queries import knn_query_points


class TestDistributions:
    def test_uniform_points_shape_and_range(self):
        points = uniform_points(100, dimension=3, low=-2, high=2, seed=1)
        assert points.shape == (100, 3)
        assert points.min() >= -2 and points.max() <= 2

    def test_uniform_ball_radius(self):
        points = uniform_points_ball(200, dimension=3, radius=1.5, seed=2)
        assert np.all(np.linalg.norm(points, axis=1) <= 1.5 + 1e-9)

    def test_gaussian_points_shape(self):
        assert gaussian_points(50, dimension=4, seed=3).shape == (50, 4)

    def test_clustered_points_are_clustered(self):
        points = clustered_points(500, clusters=5, spread=0.01, seed=4)
        # Tight clusters: the std of the nearest-cluster distances is small.
        assert points.shape == (500, 2)

    def test_diagonal_points_hug_the_diagonal(self):
        points = diagonal_points(300, noise=1e-5, seed=5)
        assert np.max(np.abs(points[:, 1] - points[:, 0])) < 1e-3

    def test_grid_points_count(self):
        assert grid_points(5, dimension=2).shape == (25, 2)

    def test_company_table_schema(self):
        table = company_table(10, seed=6)
        assert len(table) == 10
        name, price, earnings = table[0]
        assert isinstance(name, str) and price > 0 and earnings > 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            uniform_points(-1)

    def test_seeds_are_reproducible(self):
        assert np.array_equal(uniform_points(20, seed=7), uniform_points(20, seed=7))


class TestQueries:
    def test_selectivity_is_respected(self):
        points = uniform_points(2000, seed=8)
        for selectivity in (0.01, 0.1, 0.5):
            constraint = halfspace_queries_with_selectivity(
                points, 1, selectivity, seed=9)[0]
            fraction = sum(constraint.below(p) for p in points) / len(points)
            assert abs(fraction - selectivity) < 0.02

    def test_selectivity_bounds_validated(self):
        points = uniform_points(10, seed=10)
        with pytest.raises(ValueError):
            halfspace_queries_with_selectivity(points, 1, 1.5)

    def test_random_queries_dimension(self):
        queries = random_halfspace_queries(5, dimension=4, seed=11)
        assert all(q.dimension == 4 for q in queries)

    def test_rotated_diagonal_query_selectivity(self):
        points = diagonal_points(1000, seed=12)
        constraint = rotated_diagonal_query(points, angle=1e-3, selectivity=0.25)
        fraction = sum(constraint.below(p) for p in points) / len(points)
        assert abs(fraction - 0.25) < 0.05

    def test_knn_query_points_shape(self):
        assert knn_query_points(7, seed=13).shape == (7, 2)


class TestHarness:
    @pytest.fixture(scope="class")
    def small_index(self):
        points = uniform_points(600, seed=14)
        return points, HalfplaneIndex2D(points, block_size=32, seed=15)

    def test_run_query_workload_aggregates(self, small_index):
        points, index = small_index
        queries = halfspace_queries_with_selectivity(points, 5, 0.1, seed=16)
        summary = run_query_workload(index, queries, label="2d")
        assert summary.num_queries == 5
        assert summary.total_ios > 0
        assert summary.max_ios <= summary.total_ios
        assert summary.mean_ios == pytest.approx(summary.total_ios / 5)
        assert summary.mean_output_blocks > 0

    def test_overhead_metric_positive(self, small_index):
        points, index = small_index
        queries = halfspace_queries_with_selectivity(points, 2, 0.05, seed=17)
        summary = run_query_workload(index, queries, label="2d")
        assert summary.overhead_per_output_block > 0

    def test_experiment_result_table_rendering(self, small_index):
        points, index = small_index
        queries = halfspace_queries_with_selectivity(points, 2, 0.05, seed=18)
        result = ExperimentResult("T1-2D", "halfplane reporting")
        result.add(run_query_workload(index, queries, label="N=600"))
        table = result.to_table()
        assert "T1-2D" in table and "N=600" in table and "mean I/Os" in table

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_log_fit_exponent_recovers_power_law(self):
        sizes = [100, 200, 400, 800, 1600]
        costs = [size ** 0.66 for size in sizes]
        assert log_fit_exponent(sizes, costs) == pytest.approx(0.66, abs=0.01)

    def test_log_fit_exponent_flat_series(self):
        sizes = [100, 200, 400]
        costs = [5.0, 5.0, 5.0]
        assert abs(log_fit_exponent(sizes, costs)) < 1e-9

    def test_log_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            log_fit_exponent([10], [1])

    def test_query_cost_summary_row_format(self):
        summary = QueryCostSummary(label="x", num_queries=2, total_ios=10,
                                   max_ios=7, total_reported=64, block_size=32,
                                   space_blocks=5)
        row = summary.row()
        assert row[0] == "x" and row[-1] == "5"
