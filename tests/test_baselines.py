"""Tests for the baseline structures and the Section 1.2 degradation story."""

import math

import numpy as np
import pytest

from repro.baselines import (
    FullScanIndex,
    KDBTreeIndex,
    PagedDualIndex2D,
    QuadTreeIndex,
    RTreeIndex,
)
from repro.baselines.paged_cgl import convex_layers
from repro.core.halfplane2d import HalfplaneIndex2D
from repro.geometry.primitives import LinearConstraint
from repro.workloads import (
    diagonal_points,
    halfspace_queries_with_selectivity,
    random_halfspace_queries,
    rotated_diagonal_query,
    uniform_points,
)

from conftest import brute_force_halfspace

ALL_2D_BASELINES = [FullScanIndex, QuadTreeIndex, RTreeIndex, KDBTreeIndex,
                    PagedDualIndex2D]


@pytest.fixture(scope="module")
def uniform_cloud():
    return uniform_points(2000, seed=1)


class TestCorrectness:
    @pytest.mark.parametrize("index_class", ALL_2D_BASELINES)
    def test_matches_ground_truth_uniform(self, index_class, uniform_cloud):
        index = index_class(uniform_cloud, block_size=32)
        queries = halfspace_queries_with_selectivity(uniform_cloud, 4, 0.1, seed=2)
        for constraint in queries:
            assert brute_force_halfspace(uniform_cloud, constraint) == \
                {tuple(p) for p in index.query(constraint)}

    @pytest.mark.parametrize("index_class", ALL_2D_BASELINES)
    def test_matches_ground_truth_diagonal(self, index_class):
        points = diagonal_points(800, seed=3)
        index = index_class(points, block_size=32)
        constraint = rotated_diagonal_query(points, angle=1e-3, selectivity=0.2)
        assert brute_force_halfspace(points, constraint) == \
            {tuple(p) for p in index.query(constraint)}

    @pytest.mark.parametrize("index_class", ALL_2D_BASELINES)
    def test_empty_index(self, index_class):
        index = index_class(np.zeros((0, 2)), block_size=16)
        assert index.query(LinearConstraint((0.0,), 0.0)) == []

    @pytest.mark.parametrize("index_class", ALL_2D_BASELINES)
    def test_empty_and_full_queries(self, index_class, uniform_cloud):
        index = index_class(uniform_cloud, block_size=32)
        assert index.query(LinearConstraint((0.0,), -100.0)) == []
        assert len(index.query(LinearConstraint((0.0,), 100.0))) == len(uniform_cloud)

    def test_rtree_handles_higher_dimensions(self):
        points = uniform_points(600, dimension=3, seed=4)
        index = RTreeIndex(points, block_size=32)
        for constraint in random_halfspace_queries(4, dimension=3, seed=5):
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in index.query(constraint)}

    def test_kdb_handles_higher_dimensions(self):
        points = uniform_points(600, dimension=3, seed=6)
        index = KDBTreeIndex(points, block_size=32)
        for constraint in random_halfspace_queries(4, dimension=3, seed=7):
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in index.query(constraint)}


class TestCosts:
    def test_full_scan_costs_n_blocks(self, uniform_cloud):
        index = FullScanIndex(uniform_cloud, block_size=32)
        n = math.ceil(len(uniform_cloud) / 32)
        result = index.query_with_stats(LinearConstraint((0.0,), -100.0))
        assert result.total_ios == n

    def test_spatial_trees_beat_scan_on_uniform_small_queries(self, uniform_cloud):
        constraint = halfspace_queries_with_selectivity(uniform_cloud, 1, 0.02,
                                                        seed=8)[0]
        n = math.ceil(len(uniform_cloud) / 32)
        for index_class in (QuadTreeIndex, RTreeIndex, KDBTreeIndex):
            index = index_class(uniform_cloud, block_size=32)
            result = index.query_with_stats(constraint)
            assert result.total_ios < n

    def test_degradation_on_diagonal_input(self):
        """Section 1.2: heuristics degrade toward Ω(n); the paper's structure does not."""
        points = diagonal_points(3000, seed=9)
        constraint = rotated_diagonal_query(points, angle=5e-4, selectivity=0.02)
        n = math.ceil(len(points) / 32)
        quad = QuadTreeIndex(points, block_size=32)
        quad_cost = quad.query_with_stats(constraint).total_ios
        ours = HalfplaneIndex2D(points, block_size=32, seed=10)
        ours_cost = ours.query_with_stats(constraint).total_ios
        # The quad-tree visits a constant fraction of its nodes, the optimal
        # structure stays close to the output bound.
        assert quad_cost > n / 2
        assert ours_cost < quad_cost

    def test_paged_structure_pays_per_point_probes(self):
        points = uniform_points(1500, seed=11)
        index = PagedDualIndex2D(points, block_size=32)
        constraint = halfspace_queries_with_selectivity(points, 1, 0.3, seed=12)[0]
        result = index.query_with_stats(constraint)
        t = math.ceil(result.count / 32)
        # Unblocked probing: the cost tracks T, not T/B.
        assert result.total_ios > 2 * t


class TestConvexLayers:
    def test_layers_partition_the_points(self):
        points = uniform_points(500, seed=13)
        layers = convex_layers(points)
        counts = sum(len(layer) for layer in layers)
        assert counts == len(points)
        all_indices = np.concatenate(layers)
        assert len(set(all_indices.tolist())) == len(points)

    def test_layers_are_nested(self):
        points = uniform_points(400, seed=14)
        layers = convex_layers(points)
        assert len(layers) >= 2
        # Outer layer's hull contains every inner point.
        from scipy.spatial import ConvexHull
        hull = ConvexHull(points[layers[0]])
        # All points must be inside (or on) the outer hull: check via the
        # hull inequalities.
        A = hull.equations[:, :2]
        b = hull.equations[:, 2]
        inner = points[np.concatenate(layers[1:])]
        assert np.all(inner @ A.T + b <= 1e-9)

    def test_tiny_input(self):
        points = uniform_points(3, seed=15)
        layers = convex_layers(points)
        assert sum(len(layer) for layer in layers) == 3
