"""Tests for the optimal 2-D structure of Section 3 (Theorem 3.5)."""

import math

import numpy as np
import pytest

from repro.core.halfplane2d import HalfplaneIndex2D, default_beta
from repro.geometry.primitives import LinearConstraint
from repro.workloads import (
    clustered_points,
    diagonal_points,
    halfspace_queries_with_selectivity,
    random_halfspace_queries,
    uniform_points,
)

from conftest import brute_force_halfspace


@pytest.fixture(scope="module")
def uniform_index():
    points = uniform_points(3000, seed=1)
    return points, HalfplaneIndex2D(points, block_size=32, seed=2)


class TestConstruction:
    def test_default_beta_at_least_block_size(self):
        assert default_beta(10, 64) >= 64
        assert default_beta(100_000, 64) >= 64

    def test_empty_index(self):
        index = HalfplaneIndex2D([], block_size=16)
        assert index.size == 0
        assert index.query(LinearConstraint((1.0,), 0.0)) == []

    def test_single_point(self):
        index = HalfplaneIndex2D([(0.5, 0.5)], block_size=16)
        hit = LinearConstraint((0.0,), 1.0)
        miss = LinearConstraint((0.0,), 0.0)
        assert index.query(hit) == [(0.5, 0.5)]
        assert index.query(miss) == []

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            HalfplaneIndex2D(np.zeros((5, 3)), block_size=16)

    def test_rejects_bad_cluster_width_factor(self):
        with pytest.raises(ValueError):
            HalfplaneIndex2D(uniform_points(10, seed=0), cluster_width_factor=0)

    def test_space_is_linear(self, uniform_index):
        points, index = uniform_index
        blocks = math.ceil(len(points) / index.block_size)
        assert index.space_blocks <= 6 * blocks

    def test_number_of_layers_bounded(self, uniform_index):
        points, index = uniform_index
        assert 1 <= index.num_layers <= max(1, len(points) // index.beta) + 1


class TestCorrectness:
    def test_matches_ground_truth_on_uniform_points(self, uniform_index):
        points, index = uniform_index
        queries = halfspace_queries_with_selectivity(points, 10, 0.05, seed=3)
        queries += halfspace_queries_with_selectivity(points, 5, 0.4, seed=4)
        for constraint in queries:
            expected = brute_force_halfspace(points, constraint)
            actual = {tuple(p) for p in index.query(constraint)}
            assert actual == expected

    def test_no_duplicates_reported(self, uniform_index):
        points, index = uniform_index
        constraint = halfspace_queries_with_selectivity(points, 1, 0.3, seed=5)[0]
        reported = index.query(constraint)
        assert len(reported) == len(set(map(tuple, reported)))

    def test_empty_result_query(self, uniform_index):
        points, index = uniform_index
        constraint = LinearConstraint((0.0,), -10.0)
        assert index.query(constraint) == []

    def test_all_points_query(self, uniform_index):
        points, index = uniform_index
        constraint = LinearConstraint((0.0,), 10.0)
        assert len(index.query(constraint)) == len(points)

    def test_matches_ground_truth_on_clustered_points(self):
        points = clustered_points(1500, seed=6)
        index = HalfplaneIndex2D(points, block_size=32, seed=7)
        for constraint in random_halfspace_queries(8, seed=8):
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in index.query(constraint)}

    def test_matches_ground_truth_on_adversarial_diagonal(self):
        points = diagonal_points(1200, seed=9)
        index = HalfplaneIndex2D(points, block_size=32, seed=10)
        queries = halfspace_queries_with_selectivity(points, 6, 0.1, seed=11)
        for constraint in queries:
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in index.query(constraint)}

    def test_rejects_wrong_dimension_query(self, uniform_index):
        __, index = uniform_index
        with pytest.raises(ValueError):
            index.query(LinearConstraint((1.0, 1.0), 0.0))

    def test_cluster_width_factor_two_still_correct(self):
        points = uniform_points(800, seed=12)
        index = HalfplaneIndex2D(points, block_size=32, seed=13,
                                 cluster_width_factor=2)
        for constraint in random_halfspace_queries(6, seed=14):
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in index.query(constraint)}


class TestQueryCost:
    def test_small_output_query_uses_few_ios(self, uniform_index):
        points, index = uniform_index
        constraint = halfspace_queries_with_selectivity(points, 1, 0.01, seed=15)[0]
        result = index.query_with_stats(constraint)
        t = max(1, math.ceil(result.count / index.block_size))
        n = math.ceil(len(points) / index.block_size)
        # Far below a full scan, and within a modest factor of log_B n + t.
        assert result.total_ios < n / 2
        assert result.total_ios <= 30 * (math.log(n, index.block_size) + t)

    def test_large_output_query_is_output_dominated(self, uniform_index):
        points, index = uniform_index
        constraint = halfspace_queries_with_selectivity(points, 1, 0.5, seed=16)[0]
        result = index.query_with_stats(constraint)
        t = math.ceil(result.count / index.block_size)
        assert result.total_ios <= 8 * t

    def test_queries_do_not_write(self, uniform_index):
        points, index = uniform_index
        constraint = halfspace_queries_with_selectivity(points, 1, 0.1, seed=17)[0]
        result = index.query_with_stats(constraint)
        assert result.ios.writes == 0

    def test_layers_probed_grows_with_output(self, uniform_index):
        points, index = uniform_index
        small = halfspace_queries_with_selectivity(points, 1, 0.01, seed=18)[0]
        large = halfspace_queries_with_selectivity(points, 1, 0.6, seed=19)[0]
        index.query(small)
        probed_small = index.last_layers_probed
        index.query(large)
        probed_large = index.last_layers_probed
        assert probed_small <= probed_large

    def test_adversarial_query_stays_output_sensitive(self):
        """The Section 1.2 scenario: the paper's structure does not degrade."""
        points = diagonal_points(2000, seed=20)
        index = HalfplaneIndex2D(points, block_size=32, seed=21)
        from repro.workloads import rotated_diagonal_query
        constraint = rotated_diagonal_query(points, angle=1e-3, selectivity=0.05)
        result = index.query_with_stats(constraint)
        n = math.ceil(len(points) / index.block_size)
        assert {tuple(p) for p in result.points} == \
            brute_force_halfspace(points, constraint)
        assert result.total_ios < n
