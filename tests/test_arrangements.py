"""Tests for line envelopes, k-levels and the greedy clustering (Sections 2.3, 3.1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import (
    Cluster,
    clustering_union,
    greedy_clustering,
    max_cluster_size,
    relevant_cluster_index,
)
from repro.geometry.arrangement2d import (
    compute_level,
    level_of_point,
    lines_below_point,
)
from repro.geometry.lines import (
    envelope_value,
    lines_strictly_above,
    lines_strictly_below,
    lower_envelope,
    upper_envelope,
)
from repro.geometry.primitives import Line2


def random_lines(count, seed):
    rng = np.random.default_rng(seed)
    slopes = rng.uniform(-2, 2, size=count)
    intercepts = rng.uniform(-1, 1, size=count)
    return [Line2(float(s), float(b)) for s, b in zip(slopes, intercepts)]


class TestEnvelopes:
    def test_lower_envelope_of_single_line(self):
        lines = [Line2(1.0, 0.0)]
        assert lower_envelope(lines) == [(0, -math.inf, math.inf)]

    def test_lower_envelope_matches_pointwise_minimum(self):
        lines = random_lines(40, seed=1)
        envelope = lower_envelope(lines)
        for x in np.linspace(-3, 3, 50):
            expected = min(line.y_at(x) for line in lines)
            assert envelope_value(envelope, lines, x) == pytest.approx(expected)

    def test_upper_envelope_matches_pointwise_maximum(self):
        lines = random_lines(40, seed=2)
        envelope = upper_envelope(lines)
        for x in np.linspace(-3, 3, 50):
            expected = max(line.y_at(x) for line in lines)
            assert envelope_value(envelope, lines, x) == pytest.approx(expected)

    def test_envelope_of_parallel_lines_keeps_lowest(self):
        lines = [Line2(1.0, 0.0), Line2(1.0, 5.0), Line2(1.0, -3.0)]
        envelope = lower_envelope(lines)
        assert [entry[0] for entry in envelope] == [2]

    def test_strictly_below_and_above_partition(self):
        lines = random_lines(25, seed=3)
        below = set(lines_strictly_below(lines, 0.3, 0.1))
        above = set(lines_strictly_above(lines, 0.3, 0.1))
        assert below.isdisjoint(above)
        assert len(below) + len(above) <= len(lines)


class TestLevels:
    def test_level_zero_is_lower_envelope(self):
        lines = random_lines(30, seed=4)
        level = compute_level(lines, 0)
        envelope = lower_envelope(lines)
        for x in np.linspace(-2.5, 2.5, 40):
            assert level.y_at(x) == pytest.approx(
                envelope_value(envelope, lines, x))

    def test_level_index_out_of_range(self):
        lines = random_lines(5, seed=5)
        with pytest.raises(ValueError):
            compute_level(lines, 5)
        with pytest.raises(ValueError):
            compute_level(lines, -1)

    @pytest.mark.parametrize("k", [1, 3, 7, 15])
    def test_points_on_level_have_exactly_k_lines_below(self, k):
        lines = random_lines(40, seed=6)
        level = compute_level(lines, k)
        xs = [level.sample_point_before_first_vertex()]
        for left, right in zip(level.vertices, level.vertices[1:]):
            xs.append((left.x + right.x) / 2.0)
        if level.vertices:
            xs.append(level.vertices[-1].x + 1.0)
        for x in xs:
            y = level.y_at(x)
            assert level_of_point(lines, x, y) == k

    def test_level_vertices_are_sorted_by_x(self):
        lines = random_lines(60, seed=7)
        level = compute_level(lines, 5)
        xs = [vertex.x for vertex in level.vertices]
        assert xs == sorted(xs)

    def test_top_level_is_upper_envelope(self):
        lines = random_lines(20, seed=8)
        level = compute_level(lines, len(lines) - 1)
        envelope = upper_envelope(lines)
        for x in np.linspace(-2, 2, 25):
            assert level.y_at(x) == pytest.approx(
                envelope_value(envelope, lines, x))

    def test_entering_lines_only_at_convex_vertices(self):
        lines = random_lines(50, seed=9)
        level = compute_level(lines, 6)
        for vertex in level.vertices:
            if vertex.entering_lines:
                assert vertex.is_convex

    def test_convex_vertex_has_k_minus_one_lines_below(self):
        lines = random_lines(50, seed=10)
        k = 6
        level = compute_level(lines, k)
        convex = [v for v in level.vertices if v.is_convex]
        assert convex, "expected at least one convex vertex in a random level"
        for vertex in convex[:10]:
            assert level_of_point(lines, vertex.x, vertex.y) == k - 1

    @given(seed=st.integers(min_value=0, max_value=10_000),
           k=st.integers(min_value=0, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_level_walk_random_property(self, seed, k):
        lines = random_lines(10, seed=seed)
        level = compute_level(lines, k)
        # Sample a few abscissae and verify the level invariant everywhere.
        for x in (-1.7, -0.2, 0.9, 2.3):
            y = level.y_at(x)
            assert level_of_point(lines, x, y) == k


class TestGreedyClustering:
    def make_level(self, count=80, k=8, seed=11):
        lines = random_lines(count, seed=seed)
        return lines, compute_level(lines, k)

    def test_cluster_width_respected(self):
        lines, level = self.make_level()
        clusters = greedy_clustering(level, width=3 * level.k)
        assert max_cluster_size(clusters) <= 3 * level.k

    def test_cluster_count_bounded_by_lemma_3_2(self):
        lines, level = self.make_level(count=120, k=10, seed=12)
        clusters = greedy_clustering(level, width=3 * level.k)
        assert len(clusters) <= max(1, len(lines) // level.k)

    def test_clusters_cover_the_x_axis(self):
        lines, level = self.make_level()
        clusters = greedy_clustering(level, width=3 * level.k)
        assert clusters[0].x_from == -math.inf
        assert clusters[-1].x_to == math.inf
        for left, right in zip(clusters, clusters[1:]):
            assert left.x_to == right.x_from

    def test_cluster_contains_all_lines_below_its_level_portion(self):
        """The covering property behind Lemma 3.1."""
        lines, level = self.make_level(count=60, k=6, seed=13)
        clusters = greedy_clustering(level, width=3 * level.k)
        xs = np.linspace(-2.5, 2.5, 60)
        for x in xs:
            y = level.y_at(float(x))
            below = lines_below_point(lines, float(x), y)
            cluster = clusters[relevant_cluster_index(clusters, float(x))]
            assert below.issubset(set(cluster.lines))

    def test_union_is_lines_below_some_level_point(self):
        lines, level = self.make_level(count=60, k=6, seed=14)
        clusters = greedy_clustering(level, width=3 * level.k)
        union = set(clustering_union(clusters))
        # Every line below the level somewhere must be in the union.
        xs = np.linspace(-3, 3, 80)
        seen = set()
        for x in xs:
            seen.update(lines_below_point(lines, float(x), level.y_at(float(x))))
        assert seen.issubset(union)

    def test_invalid_width_rejected(self):
        lines, level = self.make_level()
        with pytest.raises(ValueError):
            greedy_clustering(level, width=0)

    def test_relevant_cluster_index_none_matches_last(self):
        clusters = [Cluster(lines=[0], x_from=-math.inf, x_to=0.0),
                    Cluster(lines=[1], x_from=0.0, x_to=math.inf)]
        assert relevant_cluster_index(clusters, -5.0) == 0
        assert relevant_cluster_index(clusters, 5.0) == 1

    def test_at_least_k_lines_in_every_cluster(self):
        """Each cluster starts with the lines below its boundary point (>= k-1)."""
        lines, level = self.make_level(count=100, k=9, seed=15)
        clusters = greedy_clustering(level, width=3 * level.k)
        for cluster in clusters:
            assert cluster.size >= level.k - 1
