"""Tests for 3-D lower envelopes, conflict lists, polygons and point location."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.envelope3d import (
    compute_lower_envelope,
    conflict_lists,
    default_domain,
    planes_below_point,
)
from repro.geometry.point_location import ExternalPointLocator
from repro.geometry.polygons import (
    clip_polygon_halfplane,
    fan_triangulate,
    polygon_area,
    polygon_centroid,
    polygon_contains,
    rectangle_polygon,
)
from repro.geometry.primitives import Plane3
from repro.io.store import BlockStore

DOMAIN = (-4.0, 4.0, -4.0, 4.0)


def random_planes(count, seed):
    rng = np.random.default_rng(seed)
    coefficients = rng.uniform(-1, 1, size=(count, 3))
    return [Plane3(*row) for row in coefficients]


class TestPolygons:
    def test_rectangle_polygon_is_ccw_square(self):
        poly = rectangle_polygon(0, 2, 0, 1)
        assert polygon_area(poly) == pytest.approx(2.0)

    def test_rectangle_rejects_degenerate(self):
        with pytest.raises(ValueError):
            rectangle_polygon(1, 1, 0, 1)

    def test_clip_keeps_inside_half(self):
        poly = rectangle_polygon(0, 2, 0, 2)
        clipped = clip_polygon_halfplane(poly, 1.0, 0.0, 1.0)   # x <= 1
        assert polygon_area(clipped) == pytest.approx(2.0)
        assert all(x <= 1.0 + 1e-9 for x, __ in clipped)

    def test_clip_to_empty(self):
        poly = rectangle_polygon(0, 1, 0, 1)
        clipped = clip_polygon_halfplane(poly, 1.0, 0.0, -1.0)  # x <= -1
        assert polygon_area(clipped) == 0.0

    def test_clip_whole_polygon_inside(self):
        poly = rectangle_polygon(0, 1, 0, 1)
        clipped = clip_polygon_halfplane(poly, 1.0, 0.0, 10.0)
        assert polygon_area(clipped) == pytest.approx(1.0)

    def test_fan_triangulation_preserves_area(self):
        poly = [(0, 0), (2, 0), (3, 1), (2, 2), (0, 2)]
        triangles = fan_triangulate(poly)
        assert len(triangles) == 3
        total = sum(polygon_area(list(t)) for t in triangles)
        assert total == pytest.approx(polygon_area(poly))

    def test_polygon_contains(self):
        poly = rectangle_polygon(0, 1, 0, 1)
        assert polygon_contains(poly, 0.5, 0.5)
        assert polygon_contains(poly, 0.0, 0.5)
        assert not polygon_contains(poly, 1.5, 0.5)

    def test_polygon_centroid_inside_convex(self):
        poly = rectangle_polygon(0, 2, 0, 2)
        cx, cy = polygon_centroid(poly)
        assert polygon_contains(poly, cx, cy)


class TestLowerEnvelope:
    def test_single_plane_covers_domain(self):
        envelope = compute_lower_envelope([Plane3(0.1, -0.2, 0.3)], DOMAIN)
        assert envelope.size >= 1
        assert envelope.covered_area() == pytest.approx(envelope.domain_area())

    @pytest.mark.parametrize("count,backend", [(6, "exact"), (40, "exact"),
                                               (150, "hull")])
    def test_cells_tile_the_domain(self, count, backend):
        planes = random_planes(count, seed=count)
        envelope = compute_lower_envelope(planes, DOMAIN, backend=backend)
        assert envelope.covered_area() == pytest.approx(envelope.domain_area(),
                                                        rel=1e-6)

    @pytest.mark.parametrize("count,backend", [(12, "exact"), (120, "hull")])
    def test_triangles_carry_the_lowest_plane(self, count, backend):
        planes = random_planes(count, seed=100 + count)
        envelope = compute_lower_envelope(planes, DOMAIN, backend=backend)
        rng = np.random.default_rng(0)
        for __ in range(30):
            x, y = rng.uniform(-3.9, 3.9, size=2)
            triangle_index = envelope.locate_brute(float(x), float(y))
            assert triangle_index is not None
            triangle = envelope.triangles[triangle_index]
            lowest = envelope.lowest_plane_at(float(x), float(y))
            expected = planes[lowest].z_at(float(x), float(y))
            actual = planes[triangle.plane_index].z_at(float(x), float(y))
            assert actual == pytest.approx(expected, abs=1e-6)

    def test_hull_and_exact_backends_agree_on_envelope_height(self):
        planes = random_planes(60, seed=17)
        exact = compute_lower_envelope(planes, DOMAIN, backend="exact")
        hull = compute_lower_envelope(planes, DOMAIN, backend="hull")
        rng = np.random.default_rng(1)
        for __ in range(20):
            x, y = rng.uniform(-3, 3, size=2)
            t_exact = exact.locate_brute(float(x), float(y))
            t_hull = hull.locate_brute(float(x), float(y))
            z_exact = planes[exact.triangles[t_exact].plane_index].z_at(x, y)
            z_hull = planes[hull.triangles[t_hull].plane_index].z_at(x, y)
            assert z_exact == pytest.approx(z_hull, abs=1e-6)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            compute_lower_envelope([], DOMAIN)

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            compute_lower_envelope([Plane3(0, 0, 0)], DOMAIN, backend="magic")

    def test_degenerate_domain_rejected(self):
        with pytest.raises(ValueError):
            compute_lower_envelope([Plane3(0, 0, 0)], (1, 1, 0, 1))

    def test_default_domain_covers_coefficients(self):
        planes = [Plane3(3.0, -1.0, 0.0), Plane3(-0.5, 2.0, 1.0)]
        xmin, xmax, ymin, ymax = default_domain(planes)
        assert xmin <= -3.0 <= xmax and ymin <= -3.0 <= ymax


class TestConflictLists:
    def test_conflicts_match_brute_force(self):
        planes = random_planes(50, seed=19)
        sample = list(range(0, 50, 5))
        envelope = compute_lower_envelope([planes[i] for i in sample], DOMAIN)
        lists = conflict_lists(planes, sample, envelope)
        assert len(lists) == envelope.size
        for triangle, found in zip(envelope.triangles, lists):
            expected = set()
            for vertex in triangle.vertices:
                for index in planes_below_point(planes, *vertex):
                    if index not in sample:
                        expected.add(index)
            assert set(found) == expected

    def test_sample_planes_never_conflict(self):
        planes = random_planes(30, seed=23)
        sample = list(range(10))
        envelope = compute_lower_envelope([planes[i] for i in sample], DOMAIN)
        lists = conflict_lists(planes, sample, envelope)
        for found in lists:
            assert not set(found) & set(sample)

    def test_full_sample_has_empty_conflicts(self):
        planes = random_planes(20, seed=29)
        sample = list(range(20))
        envelope = compute_lower_envelope(planes, DOMAIN)
        lists = conflict_lists(planes, sample, envelope)
        assert all(len(found) == 0 for found in lists)


class TestExternalPointLocator:
    def build(self, count, seed, block_size=16):
        planes = random_planes(count, seed=seed)
        envelope = compute_lower_envelope(planes, DOMAIN)
        store = BlockStore(block_size=block_size, cache_blocks=0)
        triangles = [(index, triangle.xy_vertices())
                     for index, triangle in enumerate(envelope.triangles)]
        return store, envelope, ExternalPointLocator(store, triangles)

    def test_locator_agrees_with_brute_force(self):
        store, envelope, locator = self.build(60, seed=31)
        rng = np.random.default_rng(2)
        planes = envelope.planes
        for __ in range(50):
            x, y = rng.uniform(-3.9, 3.9, size=2)
            located = locator.locate(float(x), float(y))
            assert located is not None
            expected_height = planes[envelope.lowest_plane_at(x, y)].z_at(x, y)
            actual_height = planes[envelope.triangles[located].plane_index].z_at(x, y)
            assert actual_height == pytest.approx(expected_height, abs=1e-6)

    def test_locate_outside_domain_returns_none(self):
        __, __, locator = self.build(20, seed=37)
        assert locator.locate(100.0, 100.0) is None

    def test_locate_costs_few_ios(self):
        store, envelope, locator = self.build(150, seed=41)
        store.reset_stats()
        locator.locate(0.1, -0.2)
        assert store.stats.reads <= 12

    def test_empty_locator(self):
        store = BlockStore(block_size=8)
        locator = ExternalPointLocator(store, [])
        assert locator.locate(0.0, 0.0) is None

    def test_space_is_linear_in_triangles(self):
        store, envelope, locator = self.build(120, seed=43)
        # The locator duplicates triangles that straddle splits, so allow a
        # small constant factor over one block per triangle.
        assert locator.space_blocks <= 2 * envelope.size + 4
