"""Tests for the process layer: shard workers, coordinator, failover.

The tentpole promise is *parity*: process-worker mode must be answer-
and I/O-count-identical to the in-process fan-out (workers rebuild their
replicas deterministically), and killing one worker of a replicated
shard must lose no requests (surviving replica serves) and no writes
(the restarted worker replays the shard's fan-out log).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import LinearConstraint, QueryEngine
from repro.engine.cluster import WorkerUnavailable, WriteLog, protocol
from repro.workloads import uniform_points

BLOCK_SIZE = 32

EVERYTHING = LinearConstraint(coeffs=(0.0,), offset=1e9)


def make_engine(points, workers, replicas=2, num_shards=4, **kwargs):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=7, workers=workers,
                         fanout_workers=4, **kwargs)
    engine.register_sharded_dataset("pts", points, num_shards=num_shards,
                                    replicas=replicas,
                                    kinds=["dynamic", "full_scan"])
    return engine


@pytest.fixture(scope="module")
def points2d():
    return uniform_points(600, seed=91)


def constraints(n=10):
    return [LinearConstraint(coeffs=(t,), offset=0.15 * t)
            for t in np.linspace(-1.0, 1.0, n)]


def wait_until(predicate, timeout_s=10.0):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
def test_constraint_and_conjunction_round_trip_exactly():
    constraint = LinearConstraint(coeffs=(0.1234567890123456, -3.5),
                                  offset=7.25e-17)
    wire = protocol.constraint_to_wire(constraint)
    back = protocol.constraint_from_wire(wire)
    assert back == constraint      # bit-identical floats over JSON

    from repro.core.conjunction import ConstraintConjunction, Halfspace
    conjunction = ConstraintConjunction(
        constraints=(constraint,),
        extra_halfspaces=(Halfspace(normal=(0.5, -1.0), offset=0.125),))
    assert protocol.conjunction_from_wire(
        protocol.conjunction_to_wire(conjunction)) == conjunction


def test_write_log_orders_and_clears():
    log = WriteLog()
    assert log.append("d", 0, "insert", (1.0, 2.0)) == 1
    assert log.append("d", 0, "delete", (1.0, 2.0)) == 2
    assert log.append("d", 1, "insert", (3.0, 4.0)) == 1   # per-shard seqs
    assert [entry[0] for entry in log.entries("d", 0)] == [1, 2]
    assert log.sizes() == {"d#0": 2, "d#1": 1}
    assert log.clear_dataset("d") == 3
    assert log.entries("d", 0) == []


# ----------------------------------------------------------------------
# mode parity (the tentpole acceptance criterion)
# ----------------------------------------------------------------------
def test_process_mode_matches_inprocess_answers_and_ios(points2d):
    inproc = make_engine(points2d, "inprocess")
    procs = make_engine(points2d, "process")
    try:
        for constraint in constraints():
            a = inproc.query("pts", constraint, clear_cache=True)
            b = procs.query("pts", constraint, clear_cache=True)
            assert sorted(map(tuple, a.points)) \
                == sorted(map(tuple, b.points))
            assert a.total_ios == b.total_ios
            assert a.ios.cache_hits == b.ios.cache_hits
        # Replica-level attribution matches too: the same replica served
        # the same shard queries and charged the same I/Os.
        assert inproc.stats.replica_load_summary() \
            == procs.stats.replica_load_summary()
    finally:
        inproc.close()
        procs.close()


def test_process_mode_parity_survives_writes(points2d):
    inproc = make_engine(points2d, "inprocess")
    procs = make_engine(points2d, "process")
    rng = np.random.default_rng(5)
    try:
        for __ in range(32):
            point = tuple(rng.uniform(-1.0, 1.0, size=2))
            assert inproc.insert("pts", point).applied
            assert procs.insert("pts", point).applied
        deletions = [tuple(rng.uniform(-1.0, 1.0, size=2))
                     for __ in range(4)]
        for point in deletions:
            inproc.insert("pts", point)
            procs.insert("pts", point)
        for point in deletions:
            assert inproc.delete("pts", point).applied
            assert procs.delete("pts", point).applied
        for constraint in constraints():
            a = inproc.query("pts", constraint, clear_cache=True)
            b = procs.query("pts", constraint, clear_cache=True)
            assert sorted(map(tuple, a.points)) \
                == sorted(map(tuple, b.points))
            assert a.total_ios == b.total_ios
    finally:
        inproc.close()
        procs.close()


def test_process_mode_serves_conjunctions(points2d):
    from repro.core.conjunction import ConstraintConjunction
    conjunction = ConstraintConjunction(constraints=(
        LinearConstraint(coeffs=(0.4,), offset=0.3),
        LinearConstraint(coeffs=(-0.7,), offset=0.5)))
    inproc = make_engine(points2d, "inprocess")
    procs = make_engine(points2d, "process")
    try:
        a = inproc.query_conjunction("pts", conjunction, clear_cache=True)
        b = procs.query_conjunction("pts", conjunction, clear_cache=True)
        assert sorted(map(tuple, a.points)) == sorted(map(tuple, b.points))
        assert a.total_ios == b.total_ios
    finally:
        inproc.close()
        procs.close()


def test_workers_env_variable_selects_mode(points2d, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "process")
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=7)
    assert engine.workers == "process" and engine.cluster is not None
    engine.close()
    monkeypatch.delenv("REPRO_WORKERS")
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=7)
    assert engine.workers == "inprocess" and engine.cluster is None
    engine.close()
    with pytest.raises(ValueError):
        QueryEngine(workers="threads")


def test_summary_reports_cluster_topology(points2d):
    engine = make_engine(points2d, "process")
    try:
        cluster = engine.summary()["cluster"]
        assert cluster["mode"] == "process"
        assert cluster["datasets"] == ["pts"]
        listing = cluster["workers"]["pts"]
        assert len(listing) == 8          # 4 shards x 2 replicas
        assert all(entry["state"] == "live" for entry in listing)
    finally:
        engine.close()


def test_explain_analyze_reconciles_across_the_boundary(points2d):
    engine = make_engine(points2d, "process")
    try:
        report = engine.explain("pts", LinearConstraint(coeffs=(0.3,),
                                                        offset=0.2),
                                analyze=True)
        worker_spans = []

        def walk(node):
            if node["name"] == "worker.query":
                worker_spans.append(node)
            for child in node.get("children", []):
                walk(child)

        walk(report["trace"]["root"]
             if "root" in report["trace"] else report["trace"])
        assert worker_spans, "no worker span crossed the process boundary"
        for span in worker_spans:
            assert span["attributes"]["trace_id"] == report["trace_id"]
            assert span["attributes"]["pid"] != os.getpid()
        # The per-shard worker I/Os reconcile with the report's actuals.
        assert sum(span["attributes"]["ios"] for span in worker_spans) \
            == report["actual_ios"]
    finally:
        engine.close()


# ----------------------------------------------------------------------
# failover: kill a worker mid-wave (satellite acceptance criterion)
# ----------------------------------------------------------------------
def test_worker_death_mid_wave_loses_no_requests(points2d):
    engine = make_engine(points2d, "process")
    reference = make_engine(points2d, "inprocess")
    queries = constraints(8)
    try:
        expected = {}
        for constraint in queries:
            answer = reference.query("pts", constraint, clear_cache=True)
            expected[constraint.coeffs] = (
                sorted(map(tuple, answer.points)), answer.total_ios)

        victim = engine.cluster.worker("pts", 0, 0)
        results, errors = [], []

        def serve(constraint):
            try:
                results.append(
                    (constraint,
                     engine.query("pts", constraint, clear_cache=True)))
            except Exception as exc:  # pragma: no cover - fail the test
                errors.append(exc)

        threads = [threading.Thread(target=serve, args=(constraint,))
                   for constraint in queries for __ in range(2)]
        for thread in threads[: len(threads) // 2]:
            thread.start()
        os.kill(victim.pid, signal.SIGKILL)      # mid-wave
        for thread in threads[len(threads) // 2:]:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == len(threads)      # every request answered
        for constraint, answer in results:
            points, ios = expected[constraint.coeffs]
            assert sorted(map(tuple, answer.points)) == points
            # A failed attempt charges nothing: the I/Os are exactly the
            # serving replica's, never lost, never double-counted.
            assert answer.total_ios == ios
    finally:
        engine.close()
        reference.close()


def test_restarted_worker_replays_missed_writes(points2d):
    engine = make_engine(points2d, "process", num_shards=2)
    try:
        # Route writes into shard 0 deterministically: points below the
        # range boundary on attribute 0.
        boundary = engine.catalog.sharded("pts").router.boundaries[0]
        low = float(min(p[0] for p in points2d))
        missed = [((low + boundary) / 2.0, 0.1 * i) for i in range(6)]

        victim = engine.cluster.worker("pts", 0, 0)
        os.kill(victim.pid, signal.SIGKILL)
        assert wait_until(lambda: not victim.process.is_alive())
        for point in missed:
            assert engine.insert("pts", point).applied   # logged, not lost

        engine.cluster.check_workers(restart=True)
        restarted = engine.cluster.worker("pts", 0, 0)
        assert restarted is not None and restarted.pid != victim.pid
        stats = engine.cluster.worker_stats("pts", 0, 0)
        assert stats["last_seq"] == len(missed)          # replayed in order
        assert stats["writes"] == len(missed)

        # The restarted worker answers with the missed points included.
        answer = engine.query("pts", EVERYTHING, clear_cache=True)
        answered = {tuple(p) for p in answer.points}
        assert all(tuple(point) in answered for point in missed)
        assert restarted.served > 0 or engine.cluster.worker(
            "pts", 0, 1).served > 0
    finally:
        engine.close()


def test_all_workers_dead_falls_back_to_local_state(points2d):
    engine = make_engine(points2d, "process", replicas=1, num_shards=2)
    try:
        baseline = engine.query("pts", EVERYTHING, clear_cache=True)
        for shard_id in range(2):
            handle = engine.cluster.worker("pts", shard_id, 0)
            os.kill(handle.pid, signal.SIGKILL)
            assert wait_until(lambda: not handle.process.is_alive())
        answer = engine.query("pts", EVERYTHING, clear_cache=True)
        assert sorted(map(tuple, answer.points)) \
            == sorted(map(tuple, baseline.points))
        assert answer.total_ios == baseline.total_ios
    finally:
        engine.close()


def test_worker_write_application_is_seq_idempotent(points2d):
    engine = make_engine(points2d, "process", num_shards=2)
    try:
        handle = engine.cluster.worker("pts", 0, 0)
        before = engine.cluster.worker_stats("pts", 0, 0)
        payload = {"op": "insert", "point": [-5.0, -5.0], "seq": 1}
        first = handle.client.call(payload)
        second = handle.client.call(payload)             # duplicate seq
        assert first["applied"] and not first["duplicate"]
        assert second["duplicate"] and not second["applied"]
        after = engine.cluster.worker_stats("pts", 0, 0)
        assert after["writes"] == before["writes"] + 1
    finally:
        engine.close()


# ----------------------------------------------------------------------
# lifecycle: rebalance, lazy materialization, direct-mutation bypass
# ----------------------------------------------------------------------
def test_rebalance_restarts_workers_and_clears_log(points2d):
    engine = make_engine(points2d, "process", num_shards=2)
    rng = np.random.default_rng(3)
    try:
        for __ in range(8):
            engine.insert("pts", tuple(rng.uniform(-1.0, 1.0, size=2)))
        assert engine.cluster.log.sizes()
        old_pids = {handle.pid for handle in (
            engine.cluster.worker("pts", shard_id, replica_id)
            for shard_id in range(2) for replica_id in range(2))}
        engine.rebalance("pts")
        assert engine.cluster.log.sizes() == {}    # absorbed by the split
        new_pids = {handle.pid for handle in (
            engine.cluster.worker("pts", shard_id, replica_id)
            for shard_id in range(2) for replica_id in range(2))}
        assert old_pids.isdisjoint(new_pids)
        reference = make_engine(points2d, "inprocess", num_shards=2)
        try:
            rng2 = np.random.default_rng(3)
            for __ in range(8):
                reference.insert("pts",
                                 tuple(rng2.uniform(-1.0, 1.0, size=2)))
            reference.rebalance("pts")
            a = reference.query("pts", EVERYTHING, clear_cache=True)
            b = engine.query("pts", EVERYTHING, clear_cache=True)
            assert sorted(map(tuple, a.points)) \
                == sorted(map(tuple, b.points))
            assert a.total_ios == b.total_ios
        finally:
            reference.close()
    finally:
        engine.close()


def test_materialized_shard_gets_workers(points2d):
    # Hash-shard a tiny dataset so one shard starts empty, then insert
    # into it: the materialize listener must spawn its workers before
    # the first logged write broadcasts.
    tiny = [(float(i), float(i)) for i in range(4)]
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=7, workers="process")
    engine.register_sharded_dataset("tiny", tiny, num_shards=4,
                                    sharding="hash", replicas=1,
                                    kinds=["dynamic", "full_scan"])
    try:
        sharded = engine.catalog.sharded("tiny")
        empty = next(s for s in sharded.shards if s.is_empty)
        probe = (100.0, 100.0)
        target = sharded.router.shard_of(probe)
        if target != empty.shard_id:
            candidates = (tuple(map(float, p)) for p in
                          np.random.default_rng(0).uniform(
                              -50, 50, size=(256, 2)))
            probe = next(p for p in candidates
                         if sharded.router.shard_of(p) == empty.shard_id)
        assert engine.insert("tiny", probe).applied
        handle = engine.cluster.worker("tiny", empty.shard_id, 0)
        assert handle is not None and handle.alive
        stats = engine.cluster.worker_stats("tiny", empty.shard_id, 0)
        assert stats["last_seq"] >= 1                   # saw its insert
        answer = engine.query("tiny", EVERYTHING, clear_cache=True)
        assert tuple(probe) in {tuple(p) for p in answer.points}
    finally:
        engine.close()


def test_direct_index_mutation_bypasses_the_dataset(points2d):
    engine = make_engine(points2d, "process", replicas=1, num_shards=2)
    try:
        shard = engine.catalog.sharded("pts").shards[0]
        index = shard.replicas[0].indexes["dynamic"]
        index.insert((-0.5, -0.5))       # behind the engine's back
        assert engine.cluster.bypassed("pts")
        answer = engine.query("pts", EVERYTHING, clear_cache=True)
        assert (-0.5, -0.5) in {tuple(p) for p in answer.points}
    finally:
        engine.close()


def test_client_raises_unavailable_for_unreachable_worker():
    from repro.engine.cluster import WorkerClient
    client = WorkerClient(("127.0.0.1", 1), timeout_s=0.5)
    with pytest.raises(WorkerUnavailable):
        client.ping(timeout_s=0.5)
    client.close()


def test_serving_and_http_paths_work_in_process_mode(points2d):
    from repro.engine import ServingRequest
    engine = make_engine(points2d, "process")
    reference = make_engine(points2d, "inprocess")
    try:
        requests = [ServingRequest(tenant="t", dataset="pts",
                                   constraint=constraint)
                    for constraint in constraints(6)]
        served = engine.serve_async(requests)
        baseline = reference.serve_async(requests)
        assert [sorted(map(tuple, item.answer.points))
                for item in served.requests] \
            == [sorted(map(tuple, item.answer.points))
                for item in baseline.requests]
    finally:
        engine.close()
        reference.close()
