"""Tests for the partition-tree family (Sections 5 and 6)."""

import math

import numpy as np
import pytest

from repro.core.hybrid3d import HybridIndex3D
from repro.core.partition_tree import PartitionTreeIndex
from repro.core.shallow_tree import ShallowPartitionTreeIndex
from repro.geometry.hamsandwich import ham_sandwich_partition
from repro.geometry.primitives import LinearConstraint
from repro.geometry.simplex import Simplex
from repro.workloads import (
    clustered_points,
    halfspace_queries_with_selectivity,
    random_halfspace_queries,
    uniform_points,
    uniform_points_ball,
)

from conftest import brute_force_halfspace


@pytest.fixture(scope="module")
def tree_2d():
    points = uniform_points(2500, seed=1)
    return points, PartitionTreeIndex(points, block_size=32)


@pytest.fixture(scope="module")
def tree_4d():
    points = uniform_points(1500, dimension=4, seed=2)
    return points, PartitionTreeIndex(points, block_size=32)


class TestPartitionTree:
    def test_matches_ground_truth_2d(self, tree_2d):
        points, tree = tree_2d
        queries = halfspace_queries_with_selectivity(points, 8, 0.05, seed=3)
        queries += halfspace_queries_with_selectivity(points, 4, 0.5, seed=4)
        for constraint in queries:
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in tree.query(constraint)}

    def test_matches_ground_truth_4d(self, tree_4d):
        points, tree = tree_4d
        for constraint in random_halfspace_queries(6, dimension=4, seed=5):
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in tree.query(constraint)}

    def test_matches_ground_truth_3d_clustered(self):
        points = clustered_points(1200, dimension=3, seed=6)
        tree = PartitionTreeIndex(points, block_size=32)
        for constraint in random_halfspace_queries(6, dimension=3, seed=7):
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in tree.query(constraint)}

    def test_space_is_linear(self, tree_2d):
        points, tree = tree_2d
        n = math.ceil(len(points) / tree.block_size)
        assert tree.space_blocks <= 6 * n

    def test_query_io_sublinear_for_small_output(self, tree_2d):
        points, tree = tree_2d
        constraint = halfspace_queries_with_selectivity(points, 1, 0.02, seed=8)[0]
        result = tree.query_with_stats(constraint)
        n = math.ceil(len(points) / tree.block_size)
        assert result.total_ios < n

    def test_empty_index(self):
        tree = PartitionTreeIndex(np.zeros((0, 2)), block_size=16)
        assert tree.query(LinearConstraint((0.0,), 0.0)) == []

    def test_dimension_mismatch_rejected(self, tree_2d):
        __, tree = tree_2d
        with pytest.raises(ValueError):
            tree.query(LinearConstraint((1.0, 1.0), 0.0))

    def test_simplex_query_matches_filter(self, tree_2d):
        points, tree = tree_2d
        triangle = Simplex.from_vertices_2d([(-0.5, -0.5), (0.7, -0.3), (0.0, 0.8)])
        expected = {tuple(p) for p in points if triangle.contains(p)}
        actual = {tuple(p) for p in tree.query_simplex(triangle)}
        assert actual == expected

    def test_simplex_query_empty_region(self, tree_2d):
        points, tree = tree_2d
        far_triangle = Simplex.from_vertices_2d([(10, 10), (11, 10), (10, 11)])
        assert tree.query_simplex(far_triangle) == []

    def test_ham_sandwich_partitioner_variant_correct(self):
        points = uniform_points(900, seed=9)
        tree = PartitionTreeIndex(points, block_size=32,
                                  partitioner=ham_sandwich_partition)
        for constraint in random_halfspace_queries(5, seed=10):
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in tree.query(constraint)}

    def test_nodes_visited_smaller_than_node_count(self, tree_2d):
        points, tree = tree_2d
        constraint = halfspace_queries_with_selectivity(points, 1, 0.05, seed=11)[0]
        tree.query(constraint)
        assert 0 < tree.last_nodes_visited <= tree.num_nodes


class TestShallowTree:
    @pytest.fixture(scope="class")
    def shallow_3d(self):
        points = uniform_points_ball(1200, dimension=3, seed=12)
        return points, ShallowPartitionTreeIndex(points, block_size=32)

    def test_matches_ground_truth(self, shallow_3d):
        points, tree = shallow_3d
        queries = halfspace_queries_with_selectivity(points, 5, 0.03, seed=13)
        queries += halfspace_queries_with_selectivity(points, 3, 0.4, seed=14)
        for constraint in queries:
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in tree.query(constraint)}

    def test_space_within_log_factor(self, shallow_3d):
        points, tree = shallow_3d
        n = math.ceil(len(points) / tree.block_size)
        log_factor = max(1.0, math.log(n) / math.log(tree.block_size)) + 1
        assert tree.space_blocks <= 12 * n * log_factor

    def test_shallow_query_uses_few_ios(self, shallow_3d):
        points, tree = shallow_3d
        constraint = halfspace_queries_with_selectivity(points, 1, 0.01, seed=15)[0]
        result = tree.query_with_stats(constraint)
        n = math.ceil(len(points) / tree.block_size)
        assert result.total_ios < n

    def test_deep_query_falls_back_to_secondary(self, shallow_3d):
        points, tree = shallow_3d
        constraint = halfspace_queries_with_selectivity(points, 1, 0.6, seed=16)[0]
        tree.query(constraint)
        # Large outputs are allowed to use the secondary structures; the
        # counter merely has to be consistent (>= 0).
        assert tree.last_secondary_queries >= 0

    def test_empty_index(self):
        tree = ShallowPartitionTreeIndex(np.zeros((0, 3)), block_size=16)
        assert tree.query(LinearConstraint((0.0, 0.0), 0.0)) == []

    def test_dimension_mismatch_rejected(self, shallow_3d):
        __, tree = shallow_3d
        with pytest.raises(ValueError):
            tree.query(LinearConstraint((1.0,), 0.0))


class TestHybrid3D:
    @pytest.fixture(scope="class")
    def hybrid(self):
        points = uniform_points_ball(1500, dimension=3, seed=17)
        return points, HybridIndex3D(points, block_size=32, leaf_exponent=1.5,
                                     seed=18)

    def test_matches_ground_truth(self, hybrid):
        points, tree = hybrid
        queries = halfspace_queries_with_selectivity(points, 5, 0.05, seed=19)
        queries += halfspace_queries_with_selectivity(points, 3, 0.35, seed=20)
        for constraint in queries:
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in tree.query(constraint)}

    def test_leaf_threshold_respects_exponent(self, hybrid):
        __, tree = hybrid
        assert tree.leaf_threshold == int(round(tree.block_size ** 1.5))

    def test_leaf_exponent_must_exceed_one(self):
        with pytest.raises(ValueError):
            HybridIndex3D(uniform_points_ball(100, seed=21), leaf_exponent=1.0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            HybridIndex3D(np.zeros((10, 2)))

    def test_small_query_beats_full_scan(self, hybrid):
        points, tree = hybrid
        constraint = halfspace_queries_with_selectivity(points, 1, 0.01, seed=22)[0]
        result = tree.query_with_stats(constraint)
        n = math.ceil(len(points) / tree.block_size)
        assert result.total_ios < n

    def test_leaves_queried_counter(self, hybrid):
        points, tree = hybrid
        constraint = halfspace_queries_with_selectivity(points, 1, 0.05, seed=23)[0]
        tree.query(constraint)
        assert tree.last_leaves_queried >= 0

    def test_empty_index(self):
        tree = HybridIndex3D(np.zeros((0, 3)), block_size=16)
        assert tree.query(LinearConstraint((0.0, 0.0), 0.0)) == []
