"""Integration tests for the network front-end.

Every test here talks to a real :class:`EngineServer` over a localhost
socket through the stdlib-based :class:`ServerClient` — an independent
HTTP implementation — so the wire format, not just the handler logic, is
what gets verified: authentication, per-tenant budgets held across
requests, SSE event ordering, structured 4xx refusals, and the graceful
shutdown drain.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import QueryEngine
from repro.engine import TenantBudget
from repro.engine.metrics import jsonable
from repro.engine.server import ApiKey, EngineServer, ServerClient
from repro.engine.server.protocol import (HTTPError, parse_query_request,
                                          parse_stream_query)
from repro.workloads import uniform_points

BLOCK_SIZE = 32


def brute_count(points, coeffs, offset):
    lhs = points[:, -1]
    rhs = offset + points[:, :-1] @ np.asarray(coeffs)
    return int(np.sum(lhs <= rhs))


@pytest.fixture(scope="module")
def served_engine():
    """One engine + running server shared by the read-only tests."""
    points = uniform_points(2048, seed=31)
    engine = QueryEngine(block_size=BLOCK_SIZE, cache_blocks=4, seed=31)
    engine.register_dataset("plain", points, kinds=["dynamic"])
    engine.register_sharded_dataset("sharded", points, num_shards=4,
                                    sharding="range", kinds=["dynamic"])
    keys = [
        ApiKey(key="key-fast", tenant="fast"),
        ApiKey(key="key-capped", tenant="capped",
               budget=TenantBudget(ios_per_s=3.0, burst=3.0,
                                   policy="degrade")),
        ApiKey(key="key-reject", tenant="shed",
               budget=TenantBudget(ios_per_s=1.0, burst=1.0,
                                   policy="reject")),
        ApiKey(key="key-slow", tenant="slow", requests_per_s=0.001,
               request_burst=2.0),
    ]
    with engine.serve_http(keys) as server:
        yield engine, server, points
    engine.close()


def client_for(server: EngineServer, key: str = "key-fast") -> ServerClient:
    host, port = server.address
    return ServerClient(host, port, api_key=key)


# ----------------------------------------------------------------------
# authentication
# ----------------------------------------------------------------------
def test_missing_and_unknown_keys_are_rejected(served_engine):
    __, server, __ = served_engine
    host, port = server.address
    anonymous = ServerClient(host, port)
    status, body = anonymous.query("plain", [0.1], 0.2)
    assert status == 401
    assert body["error"]["code"] == "missing_api_key"
    status, body = anonymous.stats()
    assert status == 401
    impostor = ServerClient(host, port, api_key="not-a-key")
    status, body = impostor.query("plain", [0.1], 0.2)
    assert status == 401
    assert body["error"]["code"] == "unknown_api_key"


def test_healthz_needs_no_key(served_engine):
    __, server, __ = served_engine
    host, port = server.address
    status, body = ServerClient(host, port).healthz()
    assert status == 200
    assert body["status"] == "ok"
    assert set(body["datasets"]) == {"plain", "sharded"}


def test_api_key_via_query_parameter(served_engine):
    __, server, __ = served_engine
    host, port = server.address
    status, __ = ServerClient(host, port).request(
        "GET", "/stats?api_key=key-fast")
    assert status == 200


# ----------------------------------------------------------------------
# queries over the wire
# ----------------------------------------------------------------------
def test_query_answers_match_brute_force(served_engine):
    __, server, points = served_engine
    client = client_for(server)
    for dataset in ("plain", "sharded"):
        for offset in (-0.5, 0.0, 0.4):
            status, body = client.query(dataset, [0.3], offset)
            assert status == 200
            assert body["outcome"] == "served"
            assert body["answer"]["count"] == brute_count(points, [0.3],
                                                          offset)
            assert body["answer"]["degraded"] is False


def test_rejected_and_expired_map_to_http_statuses(served_engine):
    __, server, __ = served_engine
    shed = client_for(server, "key-reject")
    # Two distinct non-cached queries against a 1-token bucket: the
    # first overdrafts the full bucket, the second is shed.
    statuses = {shed.query("plain", [0.21], 0.17 + i * 0.01)[0]
                for i in range(2)}
    assert 429 in statuses
    expired_status, body = client_for(server).query("plain", [0.33], 0.4,
                                                    deadline_s=-1.0)
    assert expired_status == 504
    assert body["outcome"] == "expired"


# ----------------------------------------------------------------------
# concurrent tenants with distinct budgets
# ----------------------------------------------------------------------
def test_concurrent_tenants_with_distinct_budgets(served_engine):
    """Four clients, four keys: the capped tenant degrades with a count
    interval while the unbudgeted tenants stay exactly served."""
    __, server, points = served_engine
    per_client = 10
    results = {}

    def run(name, key):
        client = client_for(server, key)
        outcomes = []
        # Distinct offsets per tenant so nobody rides another tenant's
        # result-cache entries at zero estimated I/O.
        nudge = {"a": 0.0, "b": 0.003, "c": 0.007, "d": 0.011}[name]
        for i in range(per_client):
            status, body = client.query("plain", [0.27],
                                        -0.6 + 0.1 * i + nudge)
            outcomes.append((status, body))
        results[name] = outcomes

    threads = [threading.Thread(target=run, args=(name, key))
               for name, key in (("a", "key-fast"), ("b", "key-fast"),
                                 ("c", "key-capped"), ("d", "key-reject"))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for name in ("a", "b"):
        assert all(status == 200 and body["outcome"] == "served"
                   for status, body in results[name]), name
    capped = [body for __, body in results["c"]]
    degraded = [body for body in capped if body["outcome"] == "degraded"]
    assert degraded, "the capped tenant never hit its budget"
    for body in degraded:
        answer = body["answer"]
        low, high = answer["count_interval"]
        assert 0.0 < answer["sample_rate"] <= 1.0
        assert low <= answer["estimated_count"] <= high
    shed = [body["outcome"] for __, body in results["d"]]
    assert "rejected" in shed


def test_request_rate_limit_is_per_key_not_per_connection(served_engine):
    __, server, __ = served_engine
    host, port = server.address
    # Burst of 2 at a ~zero refill rate: the third request 429s even
    # though every call opens a fresh connection.
    statuses = [ServerClient(host, port, api_key="key-slow")
                .query("plain", [0.11], 0.3 + i * 0.01)[0]
                for i in range(3)]
    assert statuses[:2] == [200, 200]
    assert statuses[2] == 429


# ----------------------------------------------------------------------
# SSE streaming
# ----------------------------------------------------------------------
def test_stream_delivers_estimate_before_result(served_engine):
    __, server, points = served_engine
    client = client_for(server)
    status, events = client.query_stream("sharded", [0.19], 0.23)
    assert status == 200
    names = [event.name for event in events]
    assert names == ["estimate", "result"]
    estimate, result = events
    assert estimate.at <= result.at
    low, high = estimate.data["count_interval"]
    exact = brute_count(points, [0.19], 0.23)
    assert estimate.data["count_estimate"] >= 0
    assert low <= estimate.data["count_estimate"] <= high
    assert 0.0 < estimate.data["sample_rate"] <= 1.0
    assert result.data["outcome"] == "served"
    assert result.data["answer"]["count"] == exact


def test_stream_on_expired_deadline_still_estimates(served_engine):
    __, server, __ = served_engine
    client = client_for(server)
    status, events = client.query_stream("plain", [0.42], 0.1,
                                         deadline_s=-1.0)
    assert status == 200
    names = [event.name for event in events]
    assert names == ["estimate", "expired"]
    assert "count_interval" in events[0].data
    assert events[1].data["outcome"] == "expired"


def test_stream_validation_fails_before_the_stream_opens(served_engine):
    __, server, __ = served_engine
    client = client_for(server)
    status, events = client.query_stream("no-such-dataset", [0.1], 0.0)
    assert status == 404
    assert events[0].data["error"]["code"] == "unknown_dataset"


# ----------------------------------------------------------------------
# malformed requests
# ----------------------------------------------------------------------
def test_malformed_bodies_get_structured_4xx(served_engine):
    __, server, __ = served_engine
    client = client_for(server)
    cases = [
        ({"dataset": "plain"}, 400, "missing_constraint"),
        ({"constraint": {"coeffs": [0.1], "offset": 0.0}}, 400,
         "missing_dataset"),
        ({"dataset": "plain",
          "constraint": {"coeffs": [], "offset": 0.0}}, 400,
         "bad_constraint"),
        ({"dataset": "plain",
          "constraint": {"coeffs": [0.1], "offset": "x"}}, 400,
         "bad_constraint"),
        ({"dataset": "plain", "priority": "high",
          "constraint": {"coeffs": [0.1], "offset": 0.0}}, 400,
         "bad_priority"),
        ({"dataset": "missing",
          "constraint": {"coeffs": [0.1], "offset": 0.0}}, 404,
         "unknown_dataset"),
        ({"dataset": "plain",
          "constraint": {"coeffs": [0.1, 0.2], "offset": 0.0}}, 400,
         "dimension_mismatch"),
    ]
    for payload, expected_status, expected_code in cases:
        status, body = client.request("POST", "/query", payload)
        assert status == expected_status, payload
        assert body["error"]["code"] == expected_code, payload


def test_invalid_json_and_unknown_routes(served_engine):
    __, server, __ = served_engine
    import http.client
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("POST", "/query", body=b"{not json",
                     headers={"Authorization": "Bearer key-fast",
                              "Content-Type": "application/json"})
        response = conn.getresponse()
        body = json.loads(response.read().decode("utf-8"))
        assert response.status == 400
        assert body["error"]["code"] == "bad_json"
    finally:
        conn.close()
    client = client_for(server)
    status, body = client.request("GET", "/no-such-route")
    assert status == 404
    assert body["error"]["code"] == "unknown_route"
    status, body = client.request("GET", "/query")   # wrong method
    assert status == 405
    status, body = client.request("POST", "/query")  # no body
    assert status == 400
    assert body["error"]["code"] == "empty_body"


def test_wire_parsers_reject_bad_shapes():
    with pytest.raises(HTTPError) as caught:
        parse_query_request({"dataset": "d", "constraint": "nope"}, "t")
    assert caught.value.status == 400
    with pytest.raises(HTTPError):
        parse_stream_query({"dataset": "d", "coeffs": "a,b",
                            "offset": "0.1"}, "t")
    serving = parse_stream_query({"dataset": "d", "coeffs": "0.5,-0.25",
                                  "offset": "0.125", "priority": "2",
                                  "deadline_s": "1.5"}, "t")
    assert serving.constraint.coeffs == (0.5, -0.25)
    assert serving.constraint.offset == 0.125
    assert serving.priority == 2 and serving.deadline_s == 1.5


# ----------------------------------------------------------------------
# mutations over the wire
# ----------------------------------------------------------------------
def test_insert_and_delete_round_trip():
    points = uniform_points(256, seed=13)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=13)
    engine.register_dataset("d", points, kinds=["dynamic"])
    with engine.serve_http([ApiKey(key="k", tenant="t")]) as server:
        client = client_for(server, "k")
        probe = [0.123, 0.456]
        before = client.query("d", [0.0], 1e9)[1]["answer"]["count"]
        status, body = client.insert("d", probe)
        assert status == 200
        assert body["mutation"]["applied"] is True
        after = client.query("d", [0.0], 1e9)[1]["answer"]["count"]
        assert after == before + 1
        status, body = client.delete("d", probe)
        assert status == 200
        assert body["mutation"]["applied"] is True
        status, body = client.delete("d", probe)   # now absent: no-op
        assert status == 200
        assert body["mutation"]["applied"] is False
        status, body = client.insert("d", [0.1, 0.2, 0.3])   # wrong dim
        assert status == 400
        assert body["error"]["code"] == "dimension_mismatch"
    engine.close()


def test_insert_into_empty_shard_over_http_materializes_it():
    # All build points share leading attribute 0.5, so range sharding
    # leaves every shard but one empty — the historical 500 trap.
    points = np.column_stack([np.full(64, 0.5),
                              np.linspace(-1, 1, 64)])
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=3)
    engine.register_sharded_dataset("s", points, num_shards=4,
                                    sharding="range", kinds=["dynamic"])
    with engine.serve_http([ApiKey(key="k", tenant="t")]) as server:
        client = client_for(server, "k")
        status, body = client.insert("s", [-0.9, 0.0])
        assert status == 200
        assert body["outcome"] == "served"
        assert body["mutation"]["applied"] is True
        status, body = client.query("s", [0.0], 1e9)
        assert body["answer"]["count"] == 65
    engine.close()


def test_writes_on_a_static_suite_get_a_structured_400():
    points = uniform_points(128, seed=17)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=17)
    engine.register_dataset("frozen", points, kinds=["halfplane2d"])
    with engine.serve_http([ApiKey(key="k", tenant="t")]) as server:
        client = client_for(server, "k")
        status, body = client.insert("frozen", [0.1, 0.2])
        assert status == 400
        assert body["error"]["code"] == "not_writable"
    engine.close()


# ----------------------------------------------------------------------
# /stats and the JSON-serializability satellite
# ----------------------------------------------------------------------
def test_stats_endpoint_reports_http_traffic(served_engine):
    __, server, __ = served_engine
    client = client_for(server)
    client.query("plain", [0.3], 0.25)
    client.healthz()
    status, summary = client.stats()
    assert status == 200
    json.dumps(summary, allow_nan=False)   # strict JSON all the way down
    http = summary["http"]
    assert http["/query"]["requests"] >= 1
    assert http["/healthz"]["status"]["200"] >= 1
    latency = http["/query"]["latency_s"]
    assert 0.0 <= latency["p50"] <= latency["p95"] <= latency["p99"]


def test_engine_summary_round_trips_through_strict_json(served_engine):
    """The satellite regression: everything the engine has ever put in
    its summary — numpy scalars, tuples, infinities — must survive
    ``json.dumps`` with ``allow_nan=False``."""
    engine, __, __ = served_engine
    summary = engine.summary()
    assert summary == json.loads(json.dumps(summary, allow_nan=False))


def test_jsonable_normalizes_awkward_values():
    awkward = {
        "np_int": np.int64(7),
        "np_float": np.float32(0.5),
        "array": np.arange(3),
        "tuple": (1, 2),
        "nan": float("nan"),
        "inf": float("inf"),
        "nested": {"key": np.float64(1.25)},
        3: "int-key",
    }
    cleaned = jsonable(awkward)
    assert cleaned == {"np_int": 7, "np_float": 0.5, "array": [0, 1, 2],
                       "tuple": [1, 2], "nan": None, "inf": None,
                       "nested": {"key": 1.25}, "3": "int-key"}
    json.dumps(cleaned, allow_nan=False)


# ----------------------------------------------------------------------
# graceful shutdown
# ----------------------------------------------------------------------
def test_graceful_shutdown_drains_in_flight_requests():
    points = uniform_points(1024, seed=23)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=23)
    engine.register_dataset("d", points, kinds=["dynamic"])
    server = engine.serve_http([ApiKey(key="k", tenant="t")])
    host, port = server.address
    outcomes = []

    def slow_client(offset):
        client = ServerClient(host, port, api_key="k")
        outcomes.append(client.query("d", [0.3], offset))

    threads = [threading.Thread(target=slow_client, args=(0.1 * i,))
               for i in range(6)]
    for thread in threads:
        thread.start()
    time.sleep(0.02)          # let the requests reach the server
    server.stop(timeout=30.0)
    for thread in threads:
        thread.join(timeout=30.0)
    assert not server.running
    # Every request that made it in before the stop was answered, not
    # reset: the drain finishes admitted work before the loop exits.
    assert len(outcomes) == 6
    for status, body in outcomes:
        assert status == 200
        assert body["outcome"] == "served"
    engine.close()


def test_idle_keep_alive_connections_are_reaped():
    import socket

    points = uniform_points(256, seed=41)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=41)
    engine.register_dataset("d", points, kinds=["dynamic"])
    with engine.serve_http([ApiKey(key="k", tenant="t")],
                           idle_timeout=0.4) as server:
        host, port = server.address

        def raw_get(sock):
            sock.sendall(b"GET /healthz HTTP/1.1\r\n"
                         b"Host: test\r\nX-Api-Key: k\r\n\r\n")
            sock.settimeout(5.0)
            data = b""
            while b"\r\n\r\n" not in data:
                data += sock.recv(4096)
            headers, __, rest = data.partition(b"\r\n\r\n")
            length = 0
            for line in headers.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            while len(rest) < length:
                rest += sock.recv(4096)
            return headers

        stale = socket.create_connection((host, port), timeout=5.0)
        active = socket.create_connection((host, port), timeout=5.0)
        try:
            assert raw_get(stale).startswith(b"HTTP/1.1 200")
            assert raw_get(active).startswith(b"HTTP/1.1 200")
            # Keep `active` busy under the deadline; let `stale` sit idle.
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                assert raw_get(active).startswith(b"HTTP/1.1 200")
                time.sleep(0.1)
            # The stale connection has been idle > idle_timeout: the
            # server must have closed it (recv sees EOF, not a hang).
            stale.settimeout(5.0)
            assert stale.recv(4096) == b""
            # The active connection survived the whole time.
            assert raw_get(active).startswith(b"HTTP/1.1 200")
        finally:
            stale.close()
            active.close()
    engine.close()


def test_idle_timeout_rejects_nonpositive_values():
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=43)
    engine.register_dataset("d", uniform_points(64, seed=43),
                            kinds=["dynamic"])
    with pytest.raises(ValueError):
        EngineServer(engine, [ApiKey(key="k", tenant="t")], idle_timeout=0.0)
    engine.close()


def test_server_restarts_on_the_same_engine():
    points = uniform_points(256, seed=29)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=29)
    engine.register_dataset("d", points, kinds=["dynamic"])
    keys = [ApiKey(key="k", tenant="t")]
    first = engine.serve_http(keys)
    host, port = first.address
    assert ServerClient(host, port, api_key="k").healthz()[0] == 200
    first.stop()
    second = engine.serve_http(keys)
    host, port = second.address
    status, body = ServerClient(host, port, api_key="k") \
        .query("d", [0.2], 0.3)
    assert status == 200 and body["outcome"] == "served"
    second.stop()
    engine.close()
