"""Request-scoped tracing: span trees, retention, exposition, plumbing.

Covers the observability tentpole end to end:

* the no-op singleton fast path (tracing disabled allocates nothing);
* span-tree structure, attributes, error capture and thread-safety;
* propagation through the engine — planner, executor fan-out, store
  attributes — and ``EXPLAIN ANALYZE``'s exact per-shard I/O parity on
  a K=4 sharded dataset;
* trace isolation under concurrent async waves (two tenants' spans
  never land in each other's trees) and admission spans with budget
  state on degraded requests;
* ``EngineStats.reset()`` / ``snapshot_delta()`` windowing;
* the ``MetricsRegistry`` under threads and its Prometheus text
  rendering, validated by a simple line-format checker (no new deps);
* the HTTP surface: ``trace_id`` in responses and SSE events,
  ``GET /trace/<id>``, ``GET /debug/slow``, ``GET /metrics``, chunked
  request bodies, and the 411/400/413 framing errors.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import re
import threading

import pytest

from repro import LinearConstraint, QueryEngine
from repro.engine import ServingRequest, TenantBudget
from repro.engine import tracing
from repro.engine.obs import MetricsRegistry, render_prometheus
from repro.engine.server import ApiKey, ServerClient
from repro.engine.server.protocol import HTTPError, read_request
from repro.engine.tracing import NULL_SPAN, NULL_TRACE, Tracer, activate
from repro.workloads import uniform_points

BLOCK_SIZE = 32

#: A halfspace every point of a [-1, 1]^2 cloud satisfies — it
#: intersects every shard's bounding box, so nothing is pruned and a
#: K=4 dataset really fans out to 4 shards.
EVERYTHING = LinearConstraint(coeffs=(0.0,), offset=2.0)


@pytest.fixture
def traced_engine():
    """A K=4 sharded engine with request tracing enabled."""
    points = uniform_points(1024, seed=47)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=47, tracing=True)
    engine.register_sharded_dataset("grid", points, num_shards=4,
                                    sharding="range", kinds=["full_scan"])
    yield engine
    engine.close()


def served_request(engine, constraint=EVERYTHING):
    """One traced request exactly as the serving layer issues it."""
    trace = engine.tracer.start_trace("request", dataset="grid")
    try:
        with activate(trace.root):
            answer = engine.query("grid", constraint, clear_cache=True)
    finally:
        trace.finish()
    return trace, answer


def walk(node):
    """Every node of a serialized span tree, depth-first."""
    yield node
    for child in node["children"]:
        yield from walk(child)


# ----------------------------------------------------------------------
# the disabled fast path
# ----------------------------------------------------------------------
def test_disabled_tracer_hands_back_shared_noop_singletons():
    tracer = Tracer(enabled=False)
    trace = tracer.start_trace("request", tenant="t")
    assert trace is NULL_TRACE
    assert trace.trace_id == ""
    assert trace.root is NULL_SPAN
    # Arbitrarily deep instrumentation chains collapse onto the one
    # shared object — nothing is allocated per call.
    assert trace.root.child("a").child("b").child("c") is NULL_SPAN
    NULL_SPAN.set("k", 1)
    NULL_SPAN.set_many({"k": 1})
    assert NULL_SPAN.attributes == {}
    trace.finish()
    assert len(tracer.registry) == 0
    assert tracer.slow() == []


def test_span_helper_reuses_one_null_context_when_no_trace_is_active():
    first = tracing.span("anything", attr=1)
    second = tracing.span("else")
    assert first is second  # the shared null context, not a new object
    with first as node:
        assert node is NULL_SPAN
    assert tracing.current_span() is NULL_SPAN
    assert tracing.current_trace_id() == ""


# ----------------------------------------------------------------------
# span trees
# ----------------------------------------------------------------------
def test_span_tree_records_structure_attributes_and_timing():
    tracer = Tracer(enabled=True)
    trace = tracer.start_trace("request", tenant="t")
    assert trace.trace_id
    with activate(trace.root):
        with tracing.span("stage", step=1) as stage:
            assert tracing.current_span() is stage
            assert tracing.current_trace_id() == trace.trace_id
            with tracing.span("inner") as inner:
                inner.set("blocks", 3)
        assert stage.ended_s is not None  # finished on block exit
    trace.finish()
    assert trace.finished and trace.duration_s >= 0.0
    assert [node.name for node in trace.spans()] == \
        ["request", "stage", "inner"]
    assert trace.spans("inner")[0].attributes == {"blocks": 3}
    # Finished traces are fetchable from the registry by id.
    fetched = tracer.get(trace.trace_id)
    assert fetched is not None and fetched["trace_id"] == trace.trace_id
    names = [node["name"] for node in walk(fetched["root"])]
    assert names == ["request", "stage", "inner"]
    for node in walk(fetched["root"]):
        assert node["duration_ms"] >= 0.0
    json.dumps(fetched, allow_nan=False)


def test_exceptions_land_in_the_error_attribute():
    tracer = Tracer(enabled=True)
    trace = tracer.start_trace("request")
    with pytest.raises(ValueError):
        with activate(trace.root):
            with tracing.span("stage"):
                raise ValueError("boom")
    trace.finish()
    stage = trace.spans("stage")[0]
    assert stage.attributes["error"] == "ValueError: boom"


def test_child_appends_are_thread_safe():
    tracer = Tracer(enabled=True)
    trace = tracer.start_trace("request")
    per_thread = 200

    def add(worker):
        for index in range(per_thread):
            trace.root.child("w%d" % worker, index=index).finish()

    threads = [threading.Thread(target=add, args=(worker,))
               for worker in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    trace.finish()
    assert len(trace.root.children) == 8 * per_thread
    assert all(node.trace_id == trace.trace_id
               for node in trace.spans())


def test_trace_registry_bounds_retention_and_lists_ids():
    tracer = Tracer(enabled=True, max_traces=4)
    ids = [tracer.start_trace("r%d" % index).finish().trace_id
           for index in range(10)]
    assert len(tracer.registry) == 4
    assert tracer.registry.ids() == ids[-4:]  # newest kept, oldest first
    assert tracer.get(ids[0]) is None         # evicted
    assert tracer.get(ids[-1])["name"] == "r9"


# ----------------------------------------------------------------------
# propagation through the engine
# ----------------------------------------------------------------------
def test_engine_query_produces_planner_executor_store_spans(traced_engine):
    trace, answer = served_request(traced_engine)
    plan_spans = trace.spans("planner.plan")
    assert len(plan_spans) == 1
    assert plan_spans[0].attributes["dataset"] == "grid"
    assert plan_spans[0].attributes["estimated_ios"] > 0
    fanout = trace.spans("executor.fanout")
    assert len(fanout) == 1
    assert fanout[0].attributes["ios"] == answer.ios.total
    shards = trace.spans("executor.shard")
    assert len(shards) == 4  # EVERYTHING prunes nothing on K=4
    for node in shards:
        attrs = node.attributes
        # Calibration attribution and store-level counters per shard.
        assert {"shard_id", "replica_id", "index", "ios", "calibration",
                "q_error", "blocks_read", "cache_hits", "block_size",
                "vectorized"} <= set(attrs)
    assert sum(node.attributes["ios"] for node in shards) \
        == answer.ios.total


def test_explain_analyze_per_shard_io_parity_on_k4(traced_engine):
    marker = traced_engine.stats.snapshot()
    report = traced_engine.explain("grid", EVERYTHING, analyze=True)
    assert report["analyze"] is True
    assert len(report["per_shard"]) == 4
    per_shard = sum(entry["ios"] for entry in report["per_shard"])
    # The acceptance criterion: per-shard span I/Os reconcile *exactly*
    # with both the report's actuals and the EngineStats delta.
    assert per_shard == report["actual_ios"]
    assert per_shard == report["stats_delta"]["total_ios"]
    assert report["stats_delta"] == \
        traced_engine.stats.snapshot_delta(marker)
    assert {stage["name"] for stage in report["stages"]} >= \
        {"planner.plan", "executor.fanout"}
    # The trace landed in the shared registry and is refetchable.
    assert traced_engine.tracer.get(report["trace_id"]) is not None
    json.dumps(report, allow_nan=False)


def test_explain_analyze_works_when_engine_tracing_is_off():
    points = uniform_points(512, seed=48)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=48, tracing=False)
    engine.register_sharded_dataset("grid", points, num_shards=4,
                                    sharding="range", kinds=["full_scan"])
    try:
        report = engine.explain("grid", EVERYTHING, analyze=True)
        assert report["trace_id"]  # a private tracer minted one
        per_shard = sum(entry["ios"] for entry in report["per_shard"])
        assert per_shard == report["actual_ios"] \
            == report["stats_delta"]["total_ios"]
        # ... but nothing lands in the engine's (disabled) registry.
        assert engine.tracer.get(report["trace_id"]) is None
    finally:
        engine.close()


# ----------------------------------------------------------------------
# concurrent serving
# ----------------------------------------------------------------------
def test_concurrent_wave_spans_never_interleave(traced_engine):
    # Two tenants, interleaved submissions, distinct constraints (so no
    # request attaches to another's in-flight twin or result-cache hit).
    requests = []
    for index in range(10):
        for tenant in ("alpha", "beta"):
            sign = 1.0 if tenant == "alpha" else -1.0
            requests.append(ServingRequest(
                tenant=tenant, dataset="grid",
                constraint=LinearConstraint(
                    coeffs=(sign * 0.31,), offset=0.01 * index)))
    result = traced_engine.serve_async(requests, max_concurrency=4)
    assert all(item.outcome == "served" for item in result.requests)

    trees = [traced_engine.tracer.get(trace_id)
             for trace_id in traced_engine.tracer.registry.ids()]
    assert len(trees) == len(requests)
    tenants = []
    for tree in trees:
        root = tree["root"]
        assert root["name"] == "serving.request"
        tenants.append(root["attributes"]["tenant"])
        # Exactly one request's execution per tree: were spans from a
        # concurrently-served request to land in the wrong trace, that
        # trace would show a second plan/fan-out (and its victim none).
        names = [node["name"] for node in walk(root)]
        assert names.count("planner.plan") == 1
        assert names.count("executor.fanout") == 1
        assert names.count("serving.request") == 1
    assert sorted(tenants) == ["alpha"] * 10 + ["beta"] * 10


def test_degraded_requests_carry_admission_spans_with_budget_state(
        traced_engine):
    # Distinct constraints: identical ones would attach to the first
    # request's in-flight twin (or its cached result) and be "served"
    # without ever facing admission.
    requests = [ServingRequest(tenant="capped", dataset="grid",
                               constraint=LinearConstraint(
                                   coeffs=(0.0,), offset=2.0 + index))
                for index in range(3)]
    budget = TenantBudget(ios_per_s=1.0, burst=1.0, policy="degrade")
    result = traced_engine.serve_async(requests,
                                       budgets={"capped": budget})
    degraded = [item for item in result.requests
                if item.outcome == "degraded"]
    assert degraded, "a 1 I/O-per-second budget must degrade full scans"

    degraded_trees = [
        tree for tree in (traced_engine.tracer.get(trace_id)
                          for trace_id in
                          traced_engine.tracer.registry.ids())
        if tree["root"]["attributes"].get("outcome") == "degraded"]
    assert len(degraded_trees) == len(degraded)
    for tree in degraded_trees:
        admissions = [node for node in walk(tree["root"])
                      if node["name"] == "admission"]
        assert admissions, "every scheduler decision leaves a span"
        final = admissions[-1]["attributes"]
        assert final["decision"] == "degrade"
        # The budget state at decision time: the *why*, not just the what.
        assert final["budget"]["budgeted"] is True
        assert final["budget"]["policy"] == "degrade"
        assert "tokens" in final["budget"]
        assert any(node["name"] == "serving.degraded_sample"
                   for node in walk(tree["root"]))
    # Degraded requests are retained in the slow log regardless of
    # latency, so /debug/slow can explain them after the fact.
    slow = traced_engine.tracer.slow()
    assert len([entry for entry in slow if entry["degraded"]]) \
        == len(degraded)


# ----------------------------------------------------------------------
# EngineStats windowing
# ----------------------------------------------------------------------
def test_engine_stats_reset_and_snapshot_delta(traced_engine):
    traced_engine.query("grid", EVERYTHING, clear_cache=True)
    marker = traced_engine.stats.snapshot()
    for offset in (0.1, 0.2):
        traced_engine.query("grid",
                            LinearConstraint(coeffs=(0.4,),
                                             offset=offset),
                            clear_cache=True)
    delta = traced_engine.stats.snapshot_delta(marker)
    assert delta["num_queries"] == 2
    assert delta["total_ios"] > 0
    assert delta["latency_s"]["p50"] <= delta["latency_s"]["p99"]
    # reset() drops history; an old marker yields an empty window.
    traced_engine.stats.reset()
    empty = traced_engine.stats.snapshot_delta(marker)
    assert empty["num_queries"] == 0 and empty["total_ios"] == 0


# ----------------------------------------------------------------------
# metrics registry + Prometheus text
# ----------------------------------------------------------------------
#: One Prometheus text-format line: comment/HELP/TYPE, or a sample
#: ``name{labels} value`` with a float-parsable value.
PROM_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})? "
    r"[^ ]+$")


def check_prometheus_text(text):
    """Assert every line parses; return the sample metric names."""
    names = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert PROM_COMMENT.match(line), "bad comment line: %r" % line
            continue
        match = PROM_SAMPLE.match(line)
        assert match, "bad sample line: %r" % line
        name, __, rest = line.partition("{")
        if "{" not in line:
            name = line.split(" ", 1)[0]
        float(line.rsplit(" ", 1)[1])  # the value must parse
        names.add(name)
    return names


def test_metrics_registry_merges_across_threads():
    registry = MetricsRegistry()
    hits = registry.counter("hits_total", "Hits", ("worker",))
    depth = registry.gauge("depth", "Depth")

    def work(worker):
        for __ in range(500):
            hits.inc(worker=worker)
        depth.max(float(worker))

    threads = [threading.Thread(target=work, args=(str(w),))
               for w in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sum(hits.value(worker=str(w)) for w in range(6)) == 3000
    assert depth.value() == 5.0


def test_engine_metrics_render_as_valid_prometheus_text(traced_engine):
    traced_engine.query("grid", EVERYTHING, clear_cache=True)
    text = render_prometheus(traced_engine.stats.registry)
    names = check_prometheus_text(text)
    assert {"engine_queries_total", "engine_ios_total"} <= names
    # Histograms expose the full _bucket/_sum/_count family.
    assert {"engine_query_latency_seconds_bucket",
            "engine_query_latency_seconds_sum",
            "engine_query_latency_seconds_count"} <= names


# ----------------------------------------------------------------------
# the HTTP surface
# ----------------------------------------------------------------------
@pytest.fixture
def traced_server():
    points = uniform_points(1024, seed=49)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=49, tracing=True)
    engine.register_sharded_dataset("grid", points, num_shards=4,
                                    sharding="range", kinds=["full_scan"])
    keys = [ApiKey(key="k", tenant="t"),
            ApiKey(key="k-capped", tenant="capped",
                   budget=TenantBudget(ios_per_s=1.0, burst=1.0,
                                       policy="degrade"))]
    with engine.serve_http(keys) as server:
        yield engine, server
    engine.close()


def raw_request(server, method, path, body=None, headers=()):
    """One request over a raw connection; returns the full response."""
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        header_map = {"X-Api-Key": "k"}
        header_map.update(dict(headers))
        conn.request(method, path, body=body, headers=header_map)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), \
            response.read()
    finally:
        conn.close()


def test_http_responses_carry_trace_id_and_trace_route(traced_server):
    __, server = traced_server
    status, headers, raw = raw_request(
        server, "POST", "/query",
        body=json.dumps({"dataset": "grid",
                         "constraint": {"coeffs": [0.0],
                                        "offset": 2.0}}))
    assert status == 200
    body = json.loads(raw)
    trace_id = body["trace_id"]
    assert trace_id and headers.get("X-Trace-Id") == trace_id

    client = ServerClient(*server.address, api_key="k")
    status, tree = client.request("GET", "/trace/%s" % trace_id)
    assert status == 200
    assert tree["trace_id"] == trace_id
    names = [node["name"] for node in walk(tree["root"])]
    assert "serving.request" in names and "executor.fanout" in names

    status, body = client.request("GET", "/trace/not-a-trace")
    assert status == 404
    assert body["error"]["code"] == "trace_not_found"


def test_sse_events_carry_the_stream_trace_id(traced_server):
    __, server = traced_server
    client = ServerClient(*server.address, api_key="k")
    status, events = client.query_stream("grid", [0.0], 2.0)
    assert status == 200
    assert [event.name for event in events][:1] == ["estimate"]
    ids = {event.data.get("trace_id") for event in events}
    assert len(ids) == 1 and None not in ids


def test_debug_slow_surfaces_degraded_requests(traced_server):
    __, server = traced_server
    capped = ServerClient(*server.address, api_key="k-capped")
    outcomes = []
    # Distinct offsets: identical queries would be answered from the
    # result cache without facing admission again.
    for offset in (2.0, 3.0, 4.0):
        status, body = capped.query("grid", [0.0], offset)
        assert status == 200
        outcomes.append(body["outcome"] == "degraded")
    assert any(outcomes), "the capped tenant must degrade"
    client = ServerClient(*server.address, api_key="k")
    status, body = client.request("GET", "/debug/slow?n=5")
    assert status == 200
    assert body["threshold_s"] > 0
    degraded = [entry for entry in body["slow"] if entry["degraded"]]
    assert degraded
    # The HTTP layer owns the root ("http.request"); the tenant lives on
    # the serving.request child span.
    tenants = {span["attributes"].get("tenant")
               for span in walk(degraded[0]["root"])} - {None}
    assert tenants == {"capped"}
    status, body = client.request("GET", "/debug/slow?n=frog")
    assert status == 400 and body["error"]["code"] == "bad_count"


def test_metrics_endpoint_serves_parsable_prometheus_text(traced_server):
    __, server = traced_server
    ServerClient(*server.address, api_key="k").query("grid", [0.0], 2.0)
    status, headers, raw = raw_request(server, "GET", "/metrics")
    assert status == 200
    assert headers.get("Content-Type", "").startswith("text/plain")
    names = check_prometheus_text(raw.decode("utf-8"))
    assert {"engine_queries_total", "engine_http_requests_total"} <= names


def test_stats_endpoint_mirrors_metrics_as_json(traced_server):
    __, server = traced_server
    client = ServerClient(*server.address, api_key="k")
    client.query("grid", [0.0], 2.0)
    status, summary = client.stats()
    assert status == 200
    json.dumps(summary, allow_nan=False)
    metrics = summary["metrics"]
    assert any(name.startswith("engine_queries_total")
               for name in metrics["counters"])
    assert any(name.startswith("engine_query_latency_seconds")
               for name in metrics["histograms"])


# ----------------------------------------------------------------------
# chunked request bodies (protocol level)
# ----------------------------------------------------------------------
def parse_wire(raw):
    """Run the async request parser over literal wire bytes."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(go())


def test_chunked_body_is_decoded_transparently():
    payload = json.dumps({"dataset": "grid"}).encode()
    half = len(payload) // 2
    raw = (b"POST /query HTTP/1.1\r\n"
           b"Transfer-Encoding: chunked\r\n\r\n"
           + b"%x\r\n%s\r\n" % (half, payload[:half])
           + b"%x;ext=1\r\n%s\r\n" % (len(payload) - half, payload[half:])
           + b"0\r\nX-Trailer: ignored\r\n\r\n")
    request = parse_wire(raw)
    assert request.body == payload
    assert request.json() == {"dataset": "grid"}


def test_post_without_framing_gets_411():
    with pytest.raises(HTTPError) as excinfo:
        parse_wire(b"POST /query HTTP/1.1\r\n\r\n")
    assert excinfo.value.status == 411
    assert excinfo.value.code == "length_required"


def test_double_framing_is_refused_as_smuggling_vector():
    with pytest.raises(HTTPError) as excinfo:
        parse_wire(b"POST /query HTTP/1.1\r\n"
                   b"Content-Length: 2\r\n"
                   b"Transfer-Encoding: chunked\r\n\r\n"
                   b"2\r\n{}\r\n0\r\n\r\n")
    assert excinfo.value.status == 400
    assert excinfo.value.code == "ambiguous_length"


def test_unsupported_transfer_encoding_gets_501():
    with pytest.raises(HTTPError) as excinfo:
        parse_wire(b"POST /query HTTP/1.1\r\n"
                   b"Transfer-Encoding: gzip\r\n\r\n")
    assert excinfo.value.status == 501


def test_malformed_chunk_sizes_get_400():
    with pytest.raises(HTTPError) as excinfo:
        parse_wire(b"POST /query HTTP/1.1\r\n"
                   b"Transfer-Encoding: chunked\r\n\r\n"
                   b"frog\r\n")
    assert excinfo.value.status == 400
    assert excinfo.value.code == "bad_chunk_size"
    with pytest.raises(HTTPError) as excinfo:
        parse_wire(b"POST /query HTTP/1.1\r\n"
                   b"Transfer-Encoding: chunked\r\n\r\n"
                   b"2\r\n{}XX")  # chunk data not CRLF-terminated
    assert excinfo.value.status == 400
    assert excinfo.value.code == "bad_chunk"


def test_chunked_bodies_respect_the_size_cap_incrementally():
    from repro.engine.server.protocol import MAX_BODY_BYTES
    chunk = b"x" * 4096
    framed = b"%x\r\n%s\r\n" % (len(chunk), chunk)
    count = MAX_BODY_BYTES // len(chunk) + 1
    with pytest.raises(HTTPError) as excinfo:
        parse_wire(b"POST /query HTTP/1.1\r\n"
                   b"Transfer-Encoding: chunked\r\n\r\n"
                   + framed * count + b"0\r\n\r\n")
    assert excinfo.value.status == 413
    assert excinfo.value.code == "body_too_large"


def test_chunked_query_end_to_end_over_the_wire(traced_server):
    __, server = traced_server
    payload = json.dumps({"dataset": "grid",
                          "constraint": {"coeffs": [0.0],
                                         "offset": 2.0}}).encode()
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.putrequest("POST", "/query", skip_accept_encoding=True)
        conn.putheader("X-Api-Key", "k")
        conn.putheader("Transfer-Encoding", "chunked")
        conn.endheaders()
        conn.send(b"%x\r\n%s\r\n0\r\n\r\n" % (len(payload), payload))
        response = conn.getresponse()
        body = json.loads(response.read())
    finally:
        conn.close()
    assert response.status == 200
    assert body["outcome"] == "served"
    assert body["answer"]["count"] == 1024  # the whole cloud
    assert body["trace_id"]


def test_framing_errors_land_under_their_real_endpoint_in_stats(
        traced_server):
    """The runner's catch-all must attribute a refused body (411) to the
    endpoint that refused it, with a real elapsed time — not to a
    zeroed-out wildcard."""
    engine, server = traced_server
    # http.client always sends Content-Length; drive the 411 by hand.
    host, port = server.address
    import socket
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(b"POST /query HTTP/1.1\r\nX-Api-Key: k\r\n\r\n")
        response = sock.recv(65536)
    assert b"411" in response.split(b"\r\n", 1)[0]
    assert b"length_required" in response
    summary = engine.summary()
    endpoint = summary["http"]["/query"]
    assert endpoint["status"].get("411", 0) >= 1
    assert endpoint["latency_s"]["p99"] >= 0.0
