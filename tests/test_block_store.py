"""Unit tests for the I/O-model substrate: blocks, cache and the block store."""

import pytest

from repro.io.block import Block
from repro.io.cache import LRUCache
from repro.io.store import BlockStore, IOStats


class TestBlock:
    def test_empty_block_has_zero_length(self):
        block = Block(0, 4)
        assert len(block) == 0

    def test_block_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            Block(0, 0)

    def test_block_rejects_overflow_at_construction(self):
        with pytest.raises(ValueError):
            Block(0, 2, [1, 2, 3])

    def test_append_until_full_then_overflow(self):
        block = Block(0, 2)
        block.append("a")
        block.append("b")
        assert block.is_full
        with pytest.raises(OverflowError):
            block.append("c")

    def test_free_slots_decrease_with_appends(self):
        block = Block(0, 3)
        assert block.free_slots == 3
        block.append(1)
        assert block.free_slots == 2

    def test_extend_adds_records_in_order(self):
        block = Block(0, 5)
        block.extend([1, 2, 3])
        assert list(block) == [1, 2, 3]

    def test_copy_records_is_a_copy(self):
        block = Block(0, 3, [1, 2])
        copy = block.copy_records()
        copy.append(3)
        assert len(block) == 2

    def test_repr_mentions_fill_state(self):
        block = Block(7, 4, [1])
        assert "1/4" in repr(block)


class TestLRUCache:
    def test_zero_capacity_never_caches(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None

    def test_put_then_get_hits(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"
        cache.put("c", 3)       # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_invalidate_removes_entry(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.invalidate("a")
        assert cache.get("a") is None

    def test_clear_keeps_statistics(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.hits == 1
        assert cache.get("a") is None

    def test_hit_rate_reflects_history(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestIOStats:
    def test_total_is_reads_plus_writes(self):
        stats = IOStats(reads=3, writes=2)
        assert stats.total == 5

    def test_delta_subtracts_snapshot(self):
        stats = IOStats(reads=10, writes=4)
        earlier = IOStats(reads=6, writes=1)
        delta = stats.delta(earlier)
        assert delta.reads == 4
        assert delta.writes == 3

    def test_reset_zeroes_everything(self):
        stats = IOStats(reads=1, writes=1, allocations=1)
        stats.reset()
        assert stats.total == 0
        assert stats.allocations == 0

    def test_snapshot_is_independent(self):
        stats = IOStats(reads=1)
        snap = stats.snapshot()
        stats.reads += 5
        assert snap.reads == 1


class TestBlockStore:
    def test_block_size_must_be_positive(self):
        with pytest.raises(ValueError):
            BlockStore(block_size=0)

    def test_allocate_charges_one_write(self):
        store = BlockStore(block_size=4, cache_blocks=0)
        store.allocate([1, 2])
        assert store.stats.writes == 1
        assert store.stats.reads == 0

    def test_read_charges_one_read_without_cache(self):
        store = BlockStore(block_size=4, cache_blocks=0)
        block_id = store.allocate([1, 2])
        assert store.read(block_id) == [1, 2]
        assert store.stats.reads == 1

    def test_cached_read_is_free(self):
        store = BlockStore(block_size=4, cache_blocks=2)
        block_id = store.allocate([1, 2])
        store.read(block_id)
        reads_before = store.stats.reads
        store.read(block_id)
        assert store.stats.reads == reads_before
        assert store.stats.cache_hits >= 1

    def test_allocate_many_packs_records_into_blocks(self):
        store = BlockStore(block_size=3, cache_blocks=0)
        block_ids = store.allocate_many(list(range(7)))
        assert len(block_ids) == 3
        assert store.read_many(block_ids) == list(range(7))

    def test_write_replaces_contents(self):
        store = BlockStore(block_size=4, cache_blocks=0)
        block_id = store.allocate([1])
        store.write(block_id, [9, 9])
        assert store.read(block_id) == [9, 9]

    def test_write_to_unallocated_block_raises(self):
        store = BlockStore(block_size=4)
        with pytest.raises(KeyError):
            store.write(123, [1])

    def test_read_unallocated_block_raises(self):
        store = BlockStore(block_size=4, cache_blocks=0)
        with pytest.raises(KeyError):
            store.read(5)

    def test_free_releases_space(self):
        store = BlockStore(block_size=4)
        block_id = store.allocate([1])
        assert store.num_blocks == 1
        store.free(block_id)
        assert store.num_blocks == 0
        with pytest.raises(KeyError):
            store.free(block_id)

    def test_scan_yields_records_in_order(self):
        store = BlockStore(block_size=2, cache_blocks=0)
        block_ids = store.allocate_many([1, 2, 3, 4, 5])
        assert list(store.scan(block_ids)) == [1, 2, 3, 4, 5]

    def test_reset_stats_keeps_data(self):
        store = BlockStore(block_size=4, cache_blocks=0)
        block_id = store.allocate([1])
        store.read(block_id)
        store.reset_stats()
        assert store.stats.total == 0
        assert store.read(block_id) == [1]

    def test_blocks_for_rounds_up(self):
        store = BlockStore(block_size=4)
        assert store.blocks_for(0) == 0
        assert store.blocks_for(1) == 1
        assert store.blocks_for(4) == 1
        assert store.blocks_for(5) == 2

    def test_count_writes_false_suppresses_write_charges(self):
        store = BlockStore(block_size=4, count_writes=False)
        block_id = store.allocate([1])
        store.write(block_id, [2])
        assert store.stats.writes == 0

    def test_block_overflow_rejected_on_write(self):
        store = BlockStore(block_size=2)
        block_id = store.allocate([1, 2])
        with pytest.raises(ValueError):
            store.write(block_id, [1, 2, 3])

    def test_read_returns_copy_not_alias(self):
        store = BlockStore(block_size=4, cache_blocks=2)
        block_id = store.allocate([[1], [2]])
        first = store.read(block_id)
        first.append([3])
        assert len(store.read(block_id)) == 2
