"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.store import BlockStore


@pytest.fixture
def store():
    """A small simulated disk with block size 8 and a tiny cache."""
    return BlockStore(block_size=8, cache_blocks=2)


@pytest.fixture
def store_nocache():
    """A simulated disk with caching disabled (raw I/O counts)."""
    return BlockStore(block_size=8, cache_blocks=0)


@pytest.fixture
def rng():
    """A deterministic random generator for test data."""
    return np.random.default_rng(20260614)


def brute_force_halfspace(points, constraint):
    """Ground truth for halfspace queries (set of tuples)."""
    return {tuple(p) for p in points if constraint.below(p)}
