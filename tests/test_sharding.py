"""Tests for sharded catalogs: routers, pruning, planning and fan-out."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import brute_force_halfspace

from repro import ConstraintConjunction, LinearConstraint, QueryEngine
from repro.engine import Catalog, ShardedPlan
from repro.engine.sharding import (
    HashShardRouter,
    RangeShardRouter,
    constraint_feasible_over_box,
    make_router,
)
from repro.workloads import (
    halfspace_queries_with_selectivity,
    steep_leading_attribute_queries,
    uniform_points,
)

BLOCK_SIZE = 32


@pytest.fixture(scope="module")
def points2d():
    return uniform_points(2048, seed=31)


@pytest.fixture(scope="module")
def sharded_engine(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=4,
                                    sharding="range")
    return engine


# ----------------------------------------------------------------------
# routers
# ----------------------------------------------------------------------
def test_range_router_balances_shards(points2d):
    router = RangeShardRouter.from_points(points2d, 4)
    assignment = router.assign(points2d)
    sizes = [len(rows) for rows in assignment]
    assert sum(sizes) == len(points2d)
    assert min(sizes) > 0.8 * len(points2d) / 4   # quantile split ≈ balanced

def test_range_router_orders_by_attribute(points2d):
    router = RangeShardRouter.from_points(points2d, 3, attribute=0)
    assignment = router.assign(points2d)
    maxima = [points2d[rows, 0].max() for rows in assignment]
    assert maxima == sorted(maxima)


def test_range_router_validates_boundaries():
    with pytest.raises(ValueError):
        RangeShardRouter(3, [0.5])                 # wrong boundary count
    with pytest.raises(ValueError):
        RangeShardRouter(3, [0.7, 0.2])            # unsorted
    with pytest.raises(ValueError):
        RangeShardRouter.from_points(np.zeros((4, 2)), 2, attribute=5)


def test_hash_router_is_deterministic_and_total(points2d):
    router = HashShardRouter(5)
    first = [router.shard_of(point) for point in points2d[:100]]
    second = [router.shard_of(point) for point in points2d[:100]]
    assert first == second
    assert all(0 <= shard < 5 for shard in first)


def test_make_router_rejects_unknown_scheme(points2d):
    with pytest.raises(ValueError):
        make_router("ring", points2d, 4)
    with pytest.raises(ValueError):
        make_router("range", points2d, 0)


# ----------------------------------------------------------------------
# box pruning
# ----------------------------------------------------------------------
def test_constraint_feasible_over_box_exact_corners():
    # y <= 2x - 1 against the unit square: feasible only where x is large.
    constraint = LinearConstraint(coeffs=(2.0,), offset=-1.0)
    assert constraint_feasible_over_box(constraint, (0.6, 0.0), (1.0, 1.0))
    assert not constraint_feasible_over_box(constraint, (0.0, 0.6),
                                            (0.4, 1.0))
    with pytest.raises(ValueError):
        constraint_feasible_over_box(constraint, (0.0,), (1.0,))


def test_pruning_never_loses_answers(sharded_engine, points2d):
    sharded = sharded_engine.catalog.sharded("sh")
    for constraint in steep_leading_attribute_queries(points2d, 6, 0.03,
                                                      seed=43):
        relevant = {shard.shard_id
                    for shard in sharded.relevant_shards(constraint)}
        for shard in sharded.shards:
            hits = [p for p in shard.dataset.points if constraint.below(p)]
            if hits:
                assert shard.shard_id in relevant
        assert len(relevant) < sharded.num_shards   # steep queries do prune


def test_prune_flag_disables_pruning(sharded_engine, points2d):
    sharded = sharded_engine.catalog.sharded("sh")
    constraint = steep_leading_attribute_queries(points2d, 1, 0.02,
                                                 seed=47)[0]
    assert len(sharded.relevant_shards(constraint)) < 4
    sharded.prune = False
    try:
        assert len(sharded.relevant_shards(constraint)) == 4
    finally:
        sharded.prune = True


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
def test_catalog_registers_and_builds_sharded_dataset(points2d):
    catalog = Catalog(block_size=BLOCK_SIZE, seed=3)
    sharded = catalog.register_sharded_dataset("sh", points2d, num_shards=4)
    assert catalog.is_sharded("sh")
    assert "sh" in catalog.datasets()
    assert sum(shard.size for shard in sharded.shards) == len(points2d)
    records = catalog.build_suite("sh")
    # default 2-D suite has 3 kinds, built once per shard
    assert len(records) == 3 * 4
    assert len(catalog.stores("sh")) == 4
    assert set(catalog.indexes("sh")) == {
        "%d/%s" % (shard_id, kind)
        for shard_id in range(4)
        for kind in ("halfplane2d", "partition_tree", "full_scan")}
    with pytest.raises(KeyError):
        catalog.dataset("sh")                      # sharded, not plain
    with pytest.raises(ValueError):
        catalog.build_index("sh", "full_scan")     # use build_sharded_index
    with pytest.raises(ValueError):
        catalog.register_dataset("sh", points2d)   # name taken


def test_hash_sharding_tolerates_empty_shards():
    # 3 points over 8 shards: most shards are empty and must be skipped.
    points = uniform_points(3, seed=1)
    catalog = Catalog(block_size=8, seed=3)
    sharded = catalog.register_sharded_dataset("tiny", points, num_shards=8,
                                               sharding="hash")
    catalog.build_suite("tiny", kinds=["full_scan"])
    assert sum(shard.size for shard in sharded.shards) == 3
    assert all(shard.dataset is None
               for shard in sharded.shards if shard.is_empty)
    constraint = LinearConstraint(coeffs=(0.0,), offset=1e9)
    relevant = sharded.relevant_shards(constraint)
    assert {s.shard_id for s in relevant} == {
        s.shard_id for s in sharded.nonempty_shards()}


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
def test_sharded_plan_costs_sum_of_relevant_shards(sharded_engine, points2d):
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.1,
                                                    seed=53)[0]
    plan = sharded_engine.explain("sh", constraint)
    assert isinstance(plan, ShardedPlan)
    assert plan.num_shards == 4
    assert plan.shards_queried + plan.shards_pruned == 4
    assert plan.estimated_ios == pytest.approx(
        sum(shard_plan.estimated_ios for __, shard_plan in plan.shard_plans))
    assert "shards relevant" in plan.explain()


def test_sharded_plan_prunes_on_steep_constraints(sharded_engine, points2d):
    constraint = steep_leading_attribute_queries(points2d, 1, 0.02,
                                                 seed=59)[0]
    plan = sharded_engine.explain("sh", constraint)
    assert plan.shards_pruned >= 2
    # pruning shrinks the predicted cost versus planning with prune off
    sharded = sharded_engine.catalog.sharded("sh")
    sharded.prune = False
    try:
        full = sharded_engine.explain("sh", constraint)
    finally:
        sharded.prune = True
    assert plan.estimated_ios < full.estimated_ios


# ----------------------------------------------------------------------
# executor fan-out
# ----------------------------------------------------------------------
def test_fanout_answers_match_brute_force(sharded_engine, points2d):
    constraints = halfspace_queries_with_selectivity(points2d, 5, 0.08,
                                                     seed=61)
    batch = sharded_engine.serve_batch("sh", constraints)
    for constraint, answer in zip(constraints, batch.queries):
        assert {tuple(p) for p in answer.points} == brute_force_halfspace(
            points2d, constraint)
        assert answer.shards_queried >= 1
        assert answer.shards_queried + answer.shards_pruned == 4


def test_fanout_runs_without_thread_pool(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5, fanout_workers=0)
    engine.register_sharded_dataset("sh", points2d, num_shards=3)
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.1,
                                                    seed=67)[0]
    answer = engine.query("sh", constraint)
    assert {tuple(p) for p in answer.points} == brute_force_halfspace(
        points2d, constraint)


def test_pruned_run_costs_fewer_ios_than_all_shards(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=4,
                                    sharding="range")
    constraints = steep_leading_attribute_queries(points2d, 6, 0.02, seed=71)
    sharded = engine.catalog.sharded("sh")

    pruned_total = sum(engine.query("sh", c, clear_cache=True).total_ios
                       for c in constraints)
    sharded.prune = False
    try:
        full_total = sum(engine.query("sh", c, clear_cache=True).total_ios
                         for c in constraints)
    finally:
        sharded.prune = True
    assert pruned_total < full_total


def test_dynamic_insert_disables_stale_box_pruning(points2d):
    # A point inserted outside a shard's build-time bounding box must not
    # be lost to pruning: the mutation hook marks the shard's box stale.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=4,
                                    sharding="range", kinds=["dynamic"])
    outlier = (10.0, 0.0)                       # far outside [-1, 1]^2
    last_shard = engine.catalog.sharded("sh").shards[-1]
    engine.catalog.indexes("sh")["3/dynamic"].insert(outlier)
    assert last_shard.box_stale
    # Satisfied by the outlier alone: y <= 5x - 40.
    constraint = LinearConstraint(coeffs=(5.0,), offset=-40.0)
    assert constraint.below(outlier)
    answer = engine.query("sh", constraint)
    assert tuple(outlier) in {tuple(p) for p in answer.points}


def test_sharded_conjunction_matches_filter(sharded_engine, points2d):
    conjunction = ConstraintConjunction.of(
        LinearConstraint(coeffs=(0.4,), offset=0.2),
        LinearConstraint(coeffs=(-0.3,), offset=0.5),
    )
    answer = sharded_engine.query_conjunction("sh", conjunction)
    assert sorted(tuple(p) for p in answer.points) == sorted(
        tuple(p) for p in conjunction.filter(points2d))


def test_sharded_result_cache_and_stats(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=4)
    constraints = steep_leading_attribute_queries(points2d, 3, 0.05, seed=73)
    batch = engine.serve_batch("sh", constraints + constraints)
    assert batch.result_cache_hits == len(constraints)
    summary = engine.summary()
    assert summary["shards_queried"] > 0
    assert summary["shards_pruned"] > 0
    assert 0.0 < summary["shard_prune_rate"] < 1.0


def test_sharded_calibration_shares_keys_across_shards(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=4)
    probes = halfspace_queries_with_selectivity(points2d, 2, 0.05, seed=79)
    spent = engine.calibrate("sh", probes)
    assert spent > 0
    state = engine.planner.export_calibration()
    assert set(state) == {"sh/halfplane2d", "sh/partition_tree",
                          "sh/full_scan"}
    # every shard fed the shared key: 4 shards x 2 probes
    assert all(entry["observations"] == 8 for entry in state.values())


def test_file_backed_sharded_engine_matches_memory(points2d, tmp_path):
    memory_engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    file_engine = QueryEngine(block_size=BLOCK_SIZE, seed=5, backend="file",
                              data_dir=str(tmp_path))
    for engine in (memory_engine, file_engine):
        engine.register_sharded_dataset("sh", points2d, num_shards=4)
    constraints = halfspace_queries_with_selectivity(points2d, 4, 0.05,
                                                     seed=83)
    memory_batch = memory_engine.serve_batch("sh", constraints)
    file_batch = file_engine.serve_batch("sh", constraints)
    assert memory_batch.total_ios == file_batch.total_ios
    for first, second in zip(memory_batch.queries, file_batch.queries):
        assert {tuple(p) for p in first.points} == {
            tuple(p) for p in second.points}
    # "#" is hex-escaped in block file names ("sh#0" -> "sh_0000230.blocks")
    assert (tmp_path / "sh_0000230.blocks").exists()
    file_engine.close()


def test_block_file_names_cannot_collide():
    # The shard child "sh#0" and a plain dataset "sh_0" must get distinct
    # block files (naive sanitization mapped both to "sh_0.blocks"), and
    # the fixed-width escape keeps high codepoints prefix-free too
    # ("€" must not collide with names whose escape + tail spell the
    # same hex string).
    names = ["sh#0", "sh_0", "sh 0", "sh/0", "sh-0", "sh.0",
             "€", " ac", "_20ac"]
    files = {Catalog._block_file_name(name) for name in names}
    assert len(files) == len(names)
