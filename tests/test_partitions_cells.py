"""Tests for boxes, simplices, simplicial partitions, ham-sandwich cuts and lifting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.boxes import Box, CellRelation
from repro.geometry.hamsandwich import (
    OrientedLine,
    ham_sandwich_cut,
    ham_sandwich_partition,
)
from repro.geometry.lifting import (
    distance_from_height,
    lift_point,
    lifted_height_is_shifted_squared_distance,
)
from repro.geometry.partitions import (
    crossing_number,
    is_balanced,
    max_crossing_number,
    median_cut_partition,
)
from repro.geometry.primitives import Hyperplane
from repro.geometry.simplex import Halfspace, Simplex
from repro.workloads import uniform_points

coord = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


class TestBox:
    def test_dimension_and_extent(self):
        box = Box((0.0, 0.0), (2.0, 1.0))
        assert box.dimension == 2
        assert box.extent(0) == 2.0
        assert box.widest_axis() == 0
        assert box.volume() == 2.0

    def test_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            Box((1.0,), (0.0,))
        with pytest.raises(ValueError):
            Box((0.0, 0.0), (1.0,))

    def test_of_points(self):
        box = Box.of_points([(0, 1), (2, -1)])
        assert box.lower == (0, -1)
        assert box.upper == (2, 1)
        with pytest.raises(ValueError):
            Box.of_points([])

    def test_contains(self):
        box = Box((0.0, 0.0), (1.0, 1.0))
        assert box.contains((0.5, 0.5))
        assert box.contains((0.0, 1.0))
        assert not box.contains((1.5, 0.5))

    def test_corners_count(self):
        assert len(Box((0, 0, 0), (1, 1, 1)).corners()) == 8

    def test_classify_halfspace_three_cases(self):
        box = Box((0.0, 0.0), (1.0, 1.0))
        below = Hyperplane((0.0,), 5.0)      # y <= 5 contains the box
        above = Hyperplane((0.0,), -5.0)     # y <= -5 excludes it
        crossing = Hyperplane((0.0,), 0.5)
        assert box.classify_halfspace(below) is CellRelation.BELOW
        assert box.classify_halfspace(above) is CellRelation.ABOVE
        assert box.classify_halfspace(crossing) is CellRelation.CROSSES

    def test_split(self):
        box = Box((0.0, 0.0), (2.0, 2.0))
        low, high = box.split(0, 1.0)
        assert low.upper[0] == 1.0 and high.lower[0] == 1.0
        with pytest.raises(ValueError):
            box.split(0, 5.0)


class TestSimplex:
    def test_halfspace_contains_and_excludes_box(self):
        halfspace = Halfspace(normal=(1.0, 0.0), offset=1.0)   # x <= 1
        assert halfspace.contains((0.5, 3.0))
        assert not halfspace.contains((2.0, 0.0))
        assert halfspace.excludes_box(Box((2.0, 0.0), (3.0, 1.0)))
        assert not halfspace.excludes_box(Box((0.0, 0.0), (3.0, 1.0)))

    def test_triangle_from_vertices(self):
        triangle = Simplex.from_vertices_2d([(0, 0), (2, 0), (0, 2)])
        assert triangle.contains((0.5, 0.5))
        assert triangle.contains((0.0, 0.0))
        assert not triangle.contains((2.0, 2.0))

    def test_from_vertices_requires_three(self):
        with pytest.raises(ValueError):
            Simplex.from_vertices_2d([(0, 0), (1, 1)])

    def test_contains_box_exact(self):
        triangle = Simplex.from_vertices_2d([(0, 0), (4, 0), (0, 4)])
        assert triangle.contains_box(Box((0.5, 0.5), (1.0, 1.0)))
        assert not triangle.contains_box(Box((3.0, 3.0), (3.5, 3.5)))

    def test_certainly_disjoint_is_conservative(self):
        triangle = Simplex.from_vertices_2d([(0, 0), (1, 0), (0, 1)])
        assert triangle.certainly_disjoint_from_box(Box((5.0, 5.0), (6.0, 6.0)))
        # A box overlapping the triangle must never be declared disjoint.
        assert not triangle.certainly_disjoint_from_box(Box((0.1, 0.1), (0.3, 0.3)))

    def test_filter_matches_contains(self):
        triangle = Simplex.from_vertices_2d([(0, 0), (1, 0), (0, 1)])
        points = [(0.2, 0.2), (0.9, 0.9), (0.1, 0.05)]
        assert triangle.filter(points) == [(0.2, 0.2), (0.1, 0.05)]


class TestMedianCutPartition:
    def test_partition_sizes_are_balanced(self):
        points = uniform_points(1000, seed=1)
        cells = median_cut_partition(points, 16)
        assert len(cells) == 16
        assert is_balanced(cells, 1000)
        assert sum(cell.size for cell in cells) == 1000

    def test_partition_subsets_are_disjoint(self):
        points = uniform_points(300, seed=2)
        cells = median_cut_partition(points, 8)
        seen = set()
        for cell in cells:
            indices = set(cell.indices.tolist())
            assert not indices & seen
            seen |= indices
        assert len(seen) == 300

    def test_each_cell_contains_its_points(self):
        points = uniform_points(400, seed=3)
        cells = median_cut_partition(points, 10)
        for cell in cells:
            for index in cell.indices:
                assert cell.cell.contains(points[index])

    def test_crossing_number_is_sublinear(self):
        """The Theorem 5.1 property the partition trees rely on."""
        points = uniform_points(4096, seed=4)
        r = 64
        cells = median_cut_partition(points, r)
        rng = np.random.default_rng(5)
        hyperplanes = [Hyperplane((float(rng.uniform(-2, 2)),),
                                  float(rng.uniform(-1, 1))) for __ in range(30)]
        worst = max_crossing_number(cells, hyperplanes)
        assert worst <= 4 * int(np.ceil(r ** 0.5))

    def test_r_one_returns_single_cell(self):
        points = uniform_points(50, seed=6)
        cells = median_cut_partition(points, 1)
        assert len(cells) == 1
        assert cells[0].size == 50

    def test_invalid_r_rejected(self):
        with pytest.raises(ValueError):
            median_cut_partition(uniform_points(10, seed=7), 0)

    def test_empty_input(self):
        assert median_cut_partition(np.zeros((0, 2)), 4) == []

    def test_3d_partition_crossing(self):
        points = uniform_points(2000, dimension=3, seed=8)
        cells = median_cut_partition(points, 27)
        hyperplane = Hyperplane((0.3, -0.4), 0.1)
        assert crossing_number(cells, hyperplane) < len(cells)


class TestHamSandwich:
    def test_cut_bisects_both_sets(self):
        rng = np.random.default_rng(9)
        red = rng.uniform(-1, 1, size=(201, 2))
        blue = rng.uniform(-1, 1, size=(201, 2)) + 0.3
        line = ham_sandwich_cut(red, blue)
        assert line is not None
        for cloud in (red, blue):
            values = cloud[:, 0] * line.normal[0] + cloud[:, 1] * line.normal[1] - line.offset
            positive = int(np.sum(values > 1e-12))
            negative = int(np.sum(values < -1e-12))
            assert abs(positive - negative) <= max(3, len(cloud) // 20)

    def test_cut_with_empty_set_returns_none(self):
        assert ham_sandwich_cut(np.zeros((0, 2)), np.ones((3, 2))) is None

    def test_partition_covers_all_points(self):
        points = uniform_points(500, seed=10)
        cells = ham_sandwich_partition(points, 16)
        total = sum(cell.size for cell in cells)
        assert total == 500

    def test_partition_rejects_non_planar_input(self):
        with pytest.raises(ValueError):
            ham_sandwich_partition(uniform_points(20, dimension=3, seed=11), 4)

    def test_partition_crossing_number_sublinear(self):
        points = uniform_points(2048, seed=12)
        cells = ham_sandwich_partition(points, 64)
        rng = np.random.default_rng(13)
        hyperplanes = [Hyperplane((float(rng.uniform(-2, 2)),),
                                  float(rng.uniform(-1, 1))) for __ in range(20)]
        assert max_crossing_number(cells, hyperplanes) < len(cells)

    def test_oriented_line_side(self):
        line = OrientedLine(normal=(1.0, 0.0), offset=0.5)
        assert line.side((1.0, 0.0)) > 0
        assert line.side((0.0, 0.0)) < 0


class TestLifting:
    @given(ax=coord, ay=coord, qx=coord, qy=coord)
    @settings(max_examples=100, deadline=None)
    def test_height_equals_shifted_squared_distance(self, ax, ay, qx, qy):
        height, shifted = lifted_height_is_shifted_squared_distance((ax, ay), (qx, qy))
        assert height == pytest.approx(shifted, abs=1e-6)

    def test_lift_point_coefficients(self):
        plane = lift_point((1.0, 2.0))
        assert plane.a == -2.0 and plane.b == -4.0 and plane.c == 5.0

    def test_distance_from_height_roundtrip(self):
        point, query = (0.3, -0.7), (1.0, 1.0)
        plane = lift_point(point)
        height = plane.z_at(*query)
        expected = np.hypot(point[0] - query[0], point[1] - query[1])
        assert distance_from_height(height, query) == pytest.approx(expected)

    def test_ordering_by_height_matches_ordering_by_distance(self):
        rng = np.random.default_rng(14)
        points = rng.uniform(-1, 1, size=(50, 2))
        query = (0.2, 0.1)
        heights = [lift_point(p).z_at(*query) for p in points]
        distances = [np.hypot(p[0] - query[0], p[1] - query[1]) for p in points]
        assert np.argsort(heights).tolist() == np.argsort(distances).tolist()
