"""Storage-backend conformance suite plus cache/store edge cases.

Every :class:`~repro.io.backend.StorageBackend` must behave like a dict of
blocks; the shared ``TestBackendConformance`` class runs the same contract
against each implementation.  The remaining classes cover the I/O-model
edge cases the engine depends on: buffer-pool resizing semantics,
free-then-read errors, and cache-hit accounting parity across backends.
"""

import os

import pytest

from repro.io.backend import (
    FileBackend,
    MemoryBackend,
    MmapBackend,
    StorageBackend,
    make_backend,
)
from repro.io.cache import LRUCache
from repro.io.store import BlockStore


@pytest.fixture(params=["memory", "file", "mmap"])
def backend(request, tmp_path):
    """One instance of every backend implementation."""
    if request.param == "memory":
        instance = MemoryBackend()
    elif request.param == "file":
        instance = FileBackend(str(tmp_path / "blocks.log"))
    else:
        instance = MmapBackend(str(tmp_path / "blocks.log"))
    yield instance
    instance.close()


class TestBackendConformance:
    """The contract every backend must satisfy (shared across params)."""

    def test_put_get_roundtrip_returns_fresh_copy(self, backend):
        backend.put(0, [1, 2, 3])
        first = backend.get(0)
        assert first == [1, 2, 3]
        first.append(99)
        assert backend.get(0) == [1, 2, 3]

    def test_put_overwrites_existing_block(self, backend):
        backend.put(0, [1])
        backend.put(0, [2, 3])
        assert backend.get(0) == [2, 3]
        assert len(backend) == 1

    def test_get_missing_block_raises_keyerror(self, backend):
        with pytest.raises(KeyError):
            backend.get(42)

    def test_delete_forgets_block(self, backend):
        backend.put(7, ["x"])
        backend.delete(7)
        assert not backend.contains(7)
        assert len(backend) == 0
        with pytest.raises(KeyError):
            backend.get(7)
        with pytest.raises(KeyError):
            backend.delete(7)

    def test_contains_and_in_operator(self, backend):
        backend.put(3, [0.5])
        assert backend.contains(3) and 3 in backend
        assert not backend.contains(4) and 4 not in backend

    def test_block_ids_enumerates_live_blocks(self, backend):
        for block_id in (2, 5, 9):
            backend.put(block_id, [block_id])
        backend.delete(5)
        assert sorted(backend.block_ids()) == [2, 9]

    def test_handles_tuple_records(self, backend):
        records = [(1.0, 2.0), (3.0, 4.0)]
        backend.put(0, records)
        assert backend.get(0) == records

    def test_info_reports_backend_name_and_blocks(self, backend):
        backend.put(0, [1])
        info = backend.info()
        assert info["backend"] in ("memory", "file", "mmap")
        assert info["blocks"] == 1


class TestFileBackend:
    """File-specific behaviour: persistence, compaction, temp cleanup."""

    def test_reopen_recovers_blocks_and_tombstones(self, tmp_path):
        path = str(tmp_path / "store.log")
        first = FileBackend(path)
        first.put(0, [1, 2])
        first.put(1, ["a"])
        first.put(0, [3, 4])      # supersedes the first version
        first.delete(1)
        first.close()
        reopened = FileBackend(path)
        assert sorted(reopened.block_ids()) == [0]
        assert reopened.get(0) == [3, 4]
        reopened.close()

    def test_store_over_reopened_backend_allocates_fresh_ids(self, tmp_path):
        path = str(tmp_path / "store.log")
        backend = FileBackend(path)
        store = BlockStore(block_size=4, backend=backend)
        block_id = store.allocate([1, 2, 3])
        store.close()
        resumed = BlockStore(block_size=4, backend=FileBackend(path))
        fresh = resumed.allocate(["new"])
        assert fresh != block_id
        assert resumed.read(block_id) == [1, 2, 3]
        resumed.close()

    def test_compact_drops_superseded_versions(self, tmp_path):
        backend = FileBackend(str(tmp_path / "store.log"),
                              auto_compact_ratio=0)
        for __ in range(10):
            backend.put(0, list(range(8)))
        before = backend.info()["file_bytes"]
        backend.compact()
        after = backend.info()["file_bytes"]
        assert after < before
        assert backend.get(0) == list(range(8))
        assert backend.compactions == 1
        backend.close()

    def test_auto_compaction_bounds_file_size(self, tmp_path):
        backend = FileBackend(str(tmp_path / "store.log"),
                              auto_compact_ratio=2.0)
        for __ in range(50):
            backend.put(0, list(range(32)))
        assert backend.compactions > 0
        info = backend.info()
        assert info["file_bytes"] <= 2.0 * info["live_bytes"] + 256
        backend.close()

    def test_tiny_payloads_do_not_thrash_compaction(self, tmp_path):
        # Header bytes must count as live: with payloads smaller than the
        # record header, a payload-only threshold is unsatisfiable and
        # compaction would run on every single put (O(n^2) writes).
        backend = FileBackend(str(tmp_path / "tiny.log"),
                              auto_compact_ratio=4.0)
        for block_id in range(64):
            backend.put(block_id, [])
        assert backend.compactions == 0
        assert all(backend.get(block_id) == [] for block_id in range(64))
        backend.close()

    def test_temp_file_removed_on_close(self):
        backend = FileBackend()
        path = backend.path
        backend.put(0, [1])
        assert os.path.exists(path)
        backend.close()
        assert not os.path.exists(path)
        backend.close()          # idempotent

    def test_named_file_kept_on_close(self, tmp_path):
        path = str(tmp_path / "kept.log")
        backend = FileBackend(path)
        backend.put(0, [1])
        backend.close()
        assert os.path.exists(path)

    def test_operations_after_close_raise(self, tmp_path):
        backend = FileBackend(str(tmp_path / "store.log"))
        backend.close()
        with pytest.raises(ValueError):
            backend.put(0, [1])

    def test_byte_counters_track_traffic(self, tmp_path):
        backend = FileBackend(str(tmp_path / "store.log"))
        backend.put(0, list(range(16)))
        assert backend.bytes_written > 0
        assert backend.bytes_read == 0
        backend.get(0)
        assert backend.bytes_read > 0
        backend.close()

    def test_rejects_bad_compact_ratio(self, tmp_path):
        with pytest.raises(ValueError):
            FileBackend(str(tmp_path / "x.log"), auto_compact_ratio=0.5)

    def test_recovery_drops_torn_tail_record(self, tmp_path):
        # Simulate a crash between writing a record header and its payload:
        # recovery must keep every complete record, drop the torn tail, and
        # leave the file appendable.
        import struct
        path = str(tmp_path / "torn.log")
        backend = FileBackend(path)
        backend.put(0, [1, 2])
        backend.put(1, ["ok"])
        backend.close()
        with open(path, "ab") as handle:
            handle.write(struct.pack("<qq", 2, 10_000))  # header only
            handle.write(b"partial")                     # truncated payload
        recovered = FileBackend(path)
        assert sorted(recovered.block_ids()) == [0, 1]
        assert recovered.get(0) == [1, 2]
        assert recovered.get(1) == ["ok"]
        recovered.put(3, ["after crash"])                # clean boundary
        recovered.close()
        reopened = FileBackend(path)
        assert reopened.get(3) == ["after crash"]
        reopened.close()


class TestMmapBackend:
    """Mmap-specific behaviour: remapping across appends and compaction."""

    def test_reads_after_appends_remap_lazily(self, tmp_path):
        backend = MmapBackend(str(tmp_path / "m.log"))
        backend.put(0, [1, 2])
        assert backend.get(0) == [1, 2]          # maps the initial file
        backend.put(1, list(range(64)))          # grows past the mapping
        assert backend.get(1) == list(range(64))
        assert backend.get(0) == [1, 2]
        assert backend.info()["mapped_bytes"] > 0
        backend.close()

    def test_compaction_invalidates_mapping(self, tmp_path):
        backend = MmapBackend(str(tmp_path / "m.log"), auto_compact_ratio=0)
        for version in range(10):
            backend.put(0, [version] * 8)
        backend.put(1, ["keep"])
        assert backend.get(0) == [9] * 8         # mapping established
        backend.compact()                        # payloads relocate
        assert backend.get(0) == [9] * 8
        assert backend.get(1) == ["keep"]
        backend.close()

    def test_reopen_recovers_like_file_backend(self, tmp_path):
        path = str(tmp_path / "m.log")
        first = MmapBackend(path)
        first.put(0, [1, 2])
        first.put(1, ["a"])
        first.delete(1)
        first.close()
        reopened = MmapBackend(path)
        assert sorted(reopened.block_ids()) == [0]
        assert reopened.get(0) == [1, 2]
        reopened.close()

    def test_file_written_by_file_backend_is_readable(self, tmp_path):
        # Same log format: the two file-based backends are interchangeable
        # on disk, so a deployment can switch read paths without migrating.
        path = str(tmp_path / "shared.log")
        writer = FileBackend(path)
        writer.put(3, [(1.0, 2.0)])
        writer.close()
        reader = MmapBackend(path)
        assert reader.get(3) == [(1.0, 2.0)]
        reader.close()

    def test_accounting_parity_with_memory(self, tmp_path):
        memory_store = BlockStore(block_size=4, cache_blocks=2)
        mmap_store = BlockStore(block_size=4, cache_blocks=2,
                                backend=MmapBackend(str(tmp_path / "p.log")))
        _exercise(memory_store)
        _exercise(mmap_store)
        for attribute in ("reads", "writes", "allocations", "frees",
                          "cache_hits"):
            assert getattr(memory_store.stats, attribute) == \
                getattr(mmap_store.stats, attribute), attribute
        mmap_store.close()


class TestMakeBackend:
    def test_none_and_memory_specs(self):
        assert isinstance(make_backend(None), MemoryBackend)
        assert isinstance(make_backend("memory"), MemoryBackend)

    def test_file_spec_with_path(self, tmp_path):
        backend = make_backend("file", path=str(tmp_path / "b.log"))
        assert isinstance(backend, FileBackend)
        backend.close()

    def test_mmap_spec_with_path(self, tmp_path):
        backend = make_backend("mmap", path=str(tmp_path / "m.log"))
        assert isinstance(backend, MmapBackend)
        backend.close()

    def test_instance_passthrough_and_factory(self):
        instance = MemoryBackend()
        assert make_backend(instance) is instance
        assert isinstance(make_backend(MemoryBackend), MemoryBackend)

    def test_rejects_unknown_spec_and_bad_factory(self):
        with pytest.raises(ValueError):
            make_backend("tape")
        with pytest.raises(TypeError):
            make_backend(lambda: object())


def _exercise(store: BlockStore):
    """A fixed op sequence whose accounting must not depend on the backend."""
    ids = store.allocate_many(list(range(23)))
    for block_id in ids:
        store.read(block_id)
    store.write(ids[0], [99] * 4)
    store.read(ids[0])
    store.free(ids[-1])
    store.clear_cache()
    store.read(ids[1])
    return ids


class TestAccountingParityAcrossBackends:
    """Same operations, same counters — the backend never changes the model."""

    def test_identical_io_counts(self, tmp_path):
        memory_store = BlockStore(block_size=4, cache_blocks=2)
        file_store = BlockStore(block_size=4, cache_blocks=2,
                                backend=FileBackend(str(tmp_path / "p.log")))
        _exercise(memory_store)
        _exercise(file_store)
        for attribute in ("reads", "writes", "allocations", "frees",
                          "cache_hits"):
            assert getattr(memory_store.stats, attribute) == \
                getattr(file_store.stats, attribute), attribute
        file_store.close()

    def test_identical_contents(self, tmp_path):
        memory_store = BlockStore(block_size=4, cache_blocks=2)
        file_store = BlockStore(block_size=4, cache_blocks=2,
                                backend=FileBackend(str(tmp_path / "c.log")))
        memory_ids = _exercise(memory_store)
        file_ids = _exercise(file_store)
        for memory_id, file_id in zip(memory_ids[:-1], file_ids[:-1]):
            assert memory_store.read(memory_id) == file_store.read(file_id)
        file_store.close()


class TestLRUCacheResize:
    def test_shrink_evicts_least_recently_used_first(self):
        cache = LRUCache(4)
        for key in "abcd":
            cache.put(key, key.upper())
        cache.get("a")            # refresh: LRU order is now b, c, d, a
        cache.resize(2)
        assert cache.get("b") is None
        assert cache.get("c") is None
        assert cache.get("d") == "D"
        assert cache.get("a") == "A"

    def test_grow_keeps_entries_and_allows_more(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.resize(3)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") == 1 and cache.get("b") == 2

    def test_eviction_order_intact_after_resize(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.resize(2)           # evicts "a" (oldest)
        cache.put("d", "d")       # evicts "b"
        assert cache.get("a") is None and cache.get("b") is None
        assert cache.get("c") == "c" and cache.get("d") == "d"

    def test_resize_to_zero_disables_caching(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.resize(0)
        assert len(cache) == 0
        cache.put("a", 1)
        assert cache.get("a") is None

    def test_resize_rejects_negative(self):
        with pytest.raises(ValueError):
            LRUCache(2).resize(-1)

    def test_evict_where_drops_matching_keys_only(self):
        cache = LRUCache(8)
        for key in (("a", 1), ("a", 2), ("b", 1)):
            cache.put(key, key)
        dropped = cache.evict_where(lambda key: key[0] == "a")
        assert dropped == 2
        assert cache.get(("b", 1)) == ("b", 1)
        assert cache.get(("a", 1)) is None


class TestBlockStoreEdgeCases:
    def test_eviction_order_after_cache_resize(self):
        store = BlockStore(block_size=2, cache_blocks=4)
        ids = store.allocate_many(list(range(8)))    # 4 blocks, all cached
        store.read(ids[0])                            # refresh block 0
        store.resize_cache(2)                         # keeps ids[3], ids[0]
        reads_before = store.stats.reads
        store.read(ids[0])
        store.read(ids[3])
        assert store.stats.reads == reads_before      # both still resident
        store.read(ids[1])                            # evicted -> charged
        assert store.stats.reads == reads_before + 1

    def test_free_then_read_and_free_then_write_raise(self):
        store = BlockStore(block_size=4, cache_blocks=2)
        block_id = store.allocate([1, 2])
        store.free(block_id)
        with pytest.raises(KeyError):
            store.read(block_id)
        with pytest.raises(KeyError):
            store.write(block_id, [3])

    def test_freed_block_not_served_from_cache(self):
        # The allocate/read path caches contents; free must invalidate them.
        store = BlockStore(block_size=4, cache_blocks=4)
        block_id = store.allocate([1, 2])
        store.read(block_id)
        store.free(block_id)
        with pytest.raises(KeyError):
            store.read(block_id)

    def test_cache_hit_accounting_across_resize(self):
        store = BlockStore(block_size=2, cache_blocks=0)
        ids = store.allocate_many([1, 2, 3, 4])
        store.read(ids[0])
        assert store.stats.cache_hits == 0
        store.resize_cache(2)
        store.read(ids[0])                            # miss (pool was empty)
        store.read(ids[0])                            # hit
        assert store.stats.cache_hits == 1
        info = store.cache_info()
        assert info["hits"] >= 1 and info["capacity"] == 2

    def test_resize_cache_returns_previous_capacity(self):
        store = BlockStore(block_size=4, cache_blocks=3)
        assert store.resize_cache(8) == 3
        assert store.resize_cache(3) == 8
        assert store.cache_blocks == 3
