"""Tests for the statistics subsystem: models, drift, rebalancing.

Covers the equi-depth directional histograms, the pluggable selectivity
models (uniform sample vs histogram, including the histogram-beats-sample
q-error claim on the §1.2 diagonal), per-shard estimates, the mutation
hooks keeping statistics live, the shard rebalance path (pruning
restored, caches invalidated, pinned replicas handled, auto-trigger) and
the serving satellites (degraded answers with error bars, caller-held
admission across serve_async calls).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import brute_force_halfspace

from repro import LinearConstraint, QueryEngine
from repro.engine import (
    ConformalCalibrator,
    EquiDepthHistogram,
    HistogramModel,
    ServingRequest,
    ShardedPlan,
    TenantBudget,
    UniformSampleModel,
    make_model,
)
from repro.engine.metrics import q_error
from repro.engine.serving import AdmissionController
from repro.engine.serving.admission import scaled_count_estimate
from repro.engine.stats import canonical_directions, constraint_direction
from repro.workloads import (
    diagonal_points,
    halfspace_queries_with_selectivity,
    rotated_diagonal_query,
    steep_leading_attribute_queries,
    uniform_points,
)

BLOCK_SIZE = 32


# ----------------------------------------------------------------------
# equi-depth histograms
# ----------------------------------------------------------------------
def test_equi_depth_histogram_matches_empirical_cdf():
    values = np.random.default_rng(0).normal(size=4000)
    histogram = EquiDepthHistogram(values, num_buckets=64)
    for threshold in (-2.0, -0.5, 0.0, 0.7, 1.9):
        estimate = histogram.selectivity(threshold)
        truth = float((values <= threshold).mean())
        assert abs(estimate - truth) <= 1.0 / 64 + 1e-9


def test_equi_depth_histogram_is_exact_at_bucket_edges():
    values = np.arange(1000, dtype=float)
    histogram = EquiDepthHistogram(values, num_buckets=10)
    assert histogram.selectivity(values.min() - 1) == 0.0
    assert histogram.selectivity(values.max()) == 1.0
    # The 30% quantile edge reports (almost exactly) 30%.
    edge = float(np.quantile(values, 0.3))
    assert abs(histogram.selectivity(edge) - 0.3) < 2e-3


def test_equi_depth_histogram_handles_duplicate_heavy_values():
    values = np.array([1.0] * 900 + [2.0] * 50 + [3.0] * 50)
    histogram = EquiDepthHistogram(values, num_buckets=8)
    assert abs(histogram.selectivity(1.0) - 0.9) < 0.05
    assert histogram.selectivity(3.0) == 1.0
    # Duplicate-collapsed edges must not read as pre-drifted.
    assert histogram.drift() == pytest.approx(1.0)


def test_equi_depth_histogram_insert_delete_and_drift():
    values = np.random.default_rng(1).uniform(-1, 1, size=1024)
    histogram = EquiDepthHistogram(values, num_buckets=16)
    assert histogram.drift() == pytest.approx(1.0)
    for __ in range(1024):
        histogram.insert(0.9999)  # all land in the last bucket
    assert histogram.total == 2048
    assert histogram.drift() > 8.0
    # Out-of-range inserts stretch the edge buckets instead of vanishing.
    histogram.insert(5.0)
    assert histogram.selectivity(5.0) == 1.0
    histogram.delete(5.0)
    assert histogram.total == 2048


def test_histogram_rejects_empty_and_bad_buckets():
    with pytest.raises(ValueError):
        EquiDepthHistogram([], num_buckets=4)
    with pytest.raises(ValueError):
        EquiDepthHistogram([1.0], num_buckets=0)


# ----------------------------------------------------------------------
# directions
# ----------------------------------------------------------------------
def test_canonical_directions_cover_axis_and_principal():
    points = diagonal_points(1000, noise=1e-3, seed=3)
    directions = canonical_directions(points, num_directions=12)
    assert directions.shape[1] == 2
    # Unit vectors on the upper half-circle.
    assert np.allclose(np.linalg.norm(directions, axis=1), 1.0)
    # The diagonal perpendicular (the §1.2 residual direction) is present.
    perpendicular = np.array([-1.0, 1.0]) / np.sqrt(2.0)
    assert np.max(directions @ perpendicular) > 0.9999


def test_constraint_direction_normalisation():
    constraint = LinearConstraint(coeffs=(1.0,), offset=2.0)
    unit, scale = constraint_direction(constraint)
    assert np.allclose(unit, np.array([-1.0, 1.0]) / np.sqrt(2.0))
    assert scale == pytest.approx(np.sqrt(2.0))


# ----------------------------------------------------------------------
# models
# ----------------------------------------------------------------------
def test_uniform_model_matches_sample_scan():
    points = uniform_points(2000, seed=4)
    sample = points[:500].copy()
    model = UniformSampleModel(sample, dimension=2, size=len(points))
    constraint = LinearConstraint(coeffs=(0.25,), offset=0.1)
    expected = sum(constraint.below(p) for p in sample) / len(sample)
    assert model.estimate_selectivity(constraint) == pytest.approx(expected)
    assert model.estimate_output(constraint) == int(round(expected * 2000))


def test_models_check_constraint_dimension():
    points = uniform_points(100, seed=5)
    bad = LinearConstraint(coeffs=(0.1, 0.2), offset=0.0)  # 3-D constraint
    for spec in ("uniform", "histogram"):
        model = make_model(spec, points, points[:50].copy(), seed=5)
        with pytest.raises(ValueError):
            model.estimate_selectivity(bad)


def test_make_model_rejects_unknown_spec():
    points = uniform_points(64, seed=6)
    with pytest.raises(ValueError):
        make_model("parametric", points, points.copy())


def test_histogram_model_beats_uniform_on_diagonal_qerror():
    """The acceptance-criterion claim, in miniature.

    On the §1.2 diagonal with near-diagonal queries across a log-spaced
    selectivity range, the histogram model (whose principal direction
    matches the queries' residual direction) must show strictly lower
    mean AND median q-error than the uniform 256-point sample.
    """
    points = diagonal_points(4096, noise=5e-3, seed=7)
    rng = np.random.default_rng(8)
    sample = points[rng.choice(len(points), 256, replace=False)]
    uniform = make_model("uniform", points, sample.copy(), seed=9)
    histogram = make_model("histogram", points, sample.copy(), seed=9)
    errors = {"uniform": [], "histogram": []}
    selectivities = np.exp(np.linspace(np.log(0.002), np.log(0.3), 20))
    for index, selectivity in enumerate(selectivities):
        angle = float(rng.normal(scale=2e-4))
        constraint = rotated_diagonal_query(points, angle=angle,
                                            selectivity=float(selectivity))
        actual = sum(constraint.below(p) for p in points)
        errors["uniform"].append(
            q_error(uniform.estimate_output(constraint), actual))
        errors["histogram"].append(
            q_error(histogram.estimate_output(constraint), actual))
    assert np.mean(errors["histogram"]) < np.mean(errors["uniform"])
    assert np.median(errors["histogram"]) < np.median(errors["uniform"])


def test_histogram_model_falls_back_to_sample_off_direction():
    points = uniform_points(1000, seed=10)
    sample = points[:300].copy()
    # Only the x_d axis is canonical; a steep constraint's residual
    # direction is far from it, so the model must fall back.
    model = HistogramModel(points, directions=[(0.0, 1.0)],
                           min_cosine=0.99, sample=sample)
    steep = LinearConstraint(coeffs=(25.0,), offset=0.0)
    expected = sum(steep.below(p) for p in sample) / len(sample)
    assert model.estimate_selectivity(steep) == pytest.approx(expected)
    assert model.fallbacks == 1
    # An axis-aligned constraint uses the histogram (no new fallback).
    model.estimate_selectivity(LinearConstraint(coeffs=(0.0,), offset=0.0))
    assert model.fallbacks == 1


def test_histogram_model_requires_sample_unless_forced():
    points = uniform_points(200, seed=26)
    with pytest.raises(ValueError):
        HistogramModel(points, directions=[(0.0, 1.0)])
    forced = HistogramModel(points, directions=[(0.0, 1.0)],
                            min_cosine=-1.0)
    steep = LinearConstraint(coeffs=(25.0,), offset=0.0)
    assert 0.0 <= forced.estimate_selectivity(steep) <= 1.0
    assert forced.fallbacks == 0


def test_observe_delete_evicts_dead_points_from_sample():
    """Deleting a region must not leave its points haunting the sample."""
    rng = np.random.default_rng(27)
    left = np.column_stack([rng.uniform(-1, -0.5, 200),
                            rng.uniform(-1, 1, 200)])
    right = np.column_stack([rng.uniform(0.5, 1, 200),
                             rng.uniform(-1, 1, 200)])
    points = np.concatenate([left, right])
    sample = points.copy()  # full-coverage sample
    model = UniformSampleModel(sample, dimension=2, size=len(points),
                               seed=27)
    left_half = LinearConstraint.from_inequality((1.0, 1e-9), -0.5)
    assert model.estimate_selectivity(left_half) == pytest.approx(0.5)
    for point in left:
        model.observe_delete(point)
    assert model.size == 200
    # The dead region's sample rows were evicted: its estimated
    # selectivity collapses instead of staying at ~50%.
    assert model.estimate_selectivity(left_half) < 0.05


def test_model_tracks_live_size_under_mutation_feedback():
    points = uniform_points(400, seed=11)
    model = make_model("histogram", points, points[:100].copy(), seed=11)
    everything = LinearConstraint(coeffs=(0.0,), offset=10.0)
    assert model.estimate_output(everything) == 400
    for __ in range(100):
        model.observe_insert((0.5, 0.5))
    assert model.size == 500
    assert model.estimate_output(everything) == 500
    model.observe_delete((0.5, 0.5))
    assert model.size == 499


# ----------------------------------------------------------------------
# engine integration: per-dataset and per-shard estimates
# ----------------------------------------------------------------------
def test_engine_builds_configured_model_per_dataset_and_shard():
    points = uniform_points(600, seed=12)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=12,
                         stats_model="histogram",
                         stats_params={"num_buckets": 32})
    engine.register_dataset("plain", points)
    engine.register_sharded_dataset("sh", points, num_shards=2,
                                    sharding="range")
    assert engine.catalog.dataset("plain").stats.name == "histogram"
    sharded = engine.catalog.sharded("sh")
    assert sharded.stats.name == "histogram"
    for shard in sharded.nonempty_shards():
        for replica in shard.replicas:
            assert replica.stats.name == "histogram"
            assert replica.stats.describe()["buckets"] == 32
    engine.close()


def test_sharded_plan_uses_shard_local_expected_output():
    """Per-shard models price the fan-out; the plan's expected output is
    the sum of the shard-local estimates over relevant shards."""
    points = uniform_points(2048, seed=13)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=13)
    engine.register_sharded_dataset("sh", points, num_shards=4,
                                    sharding="range")
    constraint = steep_leading_attribute_queries(points, 1, 0.05,
                                                 seed=14)[0]
    plan = engine.explain("sh", constraint)
    assert isinstance(plan, ShardedPlan)
    assert plan.expected_output == sum(
        shard_plan.expected_output for __, shard_plan in plan.shard_plans)
    # Shard-local estimates differ across shards on a steep constraint
    # (only the low-attribute shards see satisfying points).
    per_shard = [shard_plan.expected_output
                 for __, shard_plan in plan.shard_plans]
    truth = len(brute_force_halfspace(points, constraint))
    assert q_error(plan.expected_output, truth) < 2.0
    assert per_shard  # pruning keeps at least one relevant shard
    engine.close()


def test_estimation_qerror_lands_in_summary():
    points = uniform_points(800, seed=15)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=15)
    engine.register_dataset("d", points)
    for constraint in halfspace_queries_with_selectivity(points, 4, 0.1,
                                                         seed=16):
        engine.query("d", constraint)
    summary = engine.summary()["estimation_qerror"]
    assert summary["d"]["plans"] == 4
    assert summary["d"]["p50"] >= 1.0
    assert summary["d"]["max"] >= summary["d"]["p50"]
    engine.close()


def test_insert_hooks_update_dataset_model_and_counters():
    points = uniform_points(512, seed=17)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=17)
    engine.register_dataset("d", points, kinds=["dynamic", "full_scan"])
    dataset = engine.catalog.dataset("d")
    before = dataset.stats.size
    dynamic = dataset.indexes["dynamic"]
    dynamic.insert((2.0, 2.0))
    dynamic.insert((2.1, 2.1))
    assert dataset.stats.size == before + 2
    assert dataset.live_size == before + 2
    assert engine.rebalancer.mutations("d") == 2
    # The model's estimate now reflects the inserted points.
    everything = LinearConstraint(coeffs=(0.0,), offset=100.0)
    assert dataset.estimate_output(everything) == before + 2
    dynamic.delete((2.0, 2.0))
    assert dataset.stats.size == before + 1
    engine.close()


# ----------------------------------------------------------------------
# rebalancing
# ----------------------------------------------------------------------
def _skewed_insert_scenario(replicas=1, stats_model="uniform", **kwargs):
    """A K=4 range-sharded engine plus skewed inserts into shard 3."""
    points = uniform_points(1024, seed=18)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=18,
                         stats_model=stats_model, **kwargs)
    engine.register_sharded_dataset(
        "sh", points, num_shards=4, sharding="range", replicas=replicas,
        kinds=["partition_tree", "full_scan", "dynamic"])
    queries = steep_leading_attribute_queries(points, 5, 0.02, seed=19)
    rng = np.random.default_rng(20)
    extra = rng.uniform(-1, 1, size=(400, 2))
    dynamic = engine.catalog.sharded("sh").shards[3] \
        .planning_dataset().indexes["dynamic"]
    for point in extra:
        dynamic.insert(point)
    return engine, points, extra, queries


def _serve_cold(engine, queries):
    engine.stats.reset()
    ios = sum(engine.query("sh", c, clear_cache=True).total_ios
              for c in queries)
    return ios, engine.stats.shards_pruned


def test_rebalance_restores_pruning_after_skewed_inserts():
    engine, points, extra, queries = _skewed_insert_scenario()
    live = np.concatenate([points, extra])
    skewed_ios, skewed_pruned = _serve_cold(engine, queries)
    # The mutated shard's box is stale: it participates in every query.
    assert skewed_pruned < 3 * len(queries)
    report = engine.rebalance("sh")
    assert report.generation == 1
    assert max(report.new_sizes) < max(report.old_sizes)
    rebalanced_ios, rebalanced_pruned = _serve_cold(engine, queries)
    assert rebalanced_pruned == 3 * len(queries)
    assert rebalanced_ios < skewed_ios
    # Answers stay exact over the live set after the re-split.
    for constraint in queries:
        answer = engine.query("sh", constraint)
        assert {tuple(p) for p in answer.points} == \
            brute_force_halfspace(live, constraint)
    engine.close()


def test_rebalance_invalidates_cached_results():
    engine, points, extra, queries = _skewed_insert_scenario()
    warm = engine.query("sh", queries[0])
    again = engine.query("sh", queries[0])
    assert again.from_result_cache
    engine.rebalance("sh")
    fresh = engine.query("sh", queries[0])
    assert not fresh.from_result_cache
    assert {tuple(p) for p in fresh.points} == \
        {tuple(p) for p in warm.points}
    engine.close()


def test_rebalance_handles_replicated_shards():
    # Replicated shards: skewed writes go through the engine's routed
    # fan-out (direct single-replica inserts are vetoed), the re-split
    # rebuilds every replica, and reads stay exact and unpinned.
    points = uniform_points(1024, seed=18)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=18)
    engine.register_sharded_dataset(
        "sh", points, num_shards=4, sharding="range", replicas=2,
        kinds=["partition_tree", "full_scan", "dynamic"])
    queries = steep_leading_attribute_queries(points, 5, 0.02, seed=19)
    sharded = engine.catalog.sharded("sh")
    top = sharded.router.boundaries[-1]
    rng = np.random.default_rng(20)
    extra = np.column_stack([rng.uniform(top, 1.0, size=400),
                             rng.uniform(-1.0, 1.0, size=400)])
    for point in extra:
        assert engine.insert("sh", point).shard_id == 3
    assert sharded.shards[3].box_stale
    engine.rebalance("sh")
    for shard in sharded.nonempty_shards():
        assert not shard.box_stale
        assert shard.num_replicas == 2
        assert shard.replicas_for_query() == [0, 1]
    live = np.concatenate([points, extra])
    for constraint in queries:
        answer = engine.query("sh", constraint)
        assert {tuple(p) for p in answer.points} == \
            brute_force_halfspace(live, constraint)
    engine.close()


def test_rebalance_rebuilds_models_and_rewires_insert_hooks():
    engine, points, extra, queries = _skewed_insert_scenario(
        stats_model="histogram")
    assert engine.rebalancer.skew("sh")["drift"] > 2.0
    engine.rebalance("sh")
    assert engine.rebalancer.skew("sh")["drift"] == pytest.approx(1.0)
    assert engine.rebalancer.mutations("sh") == 0
    # Hooks moved to the rebuilt indexes: an insert through a *new*
    # shard's dynamic index still updates statistics and counters.
    sharded = engine.catalog.sharded("sh")
    child = sharded.shards[0].planning_dataset()
    size_before = child.stats.size
    child.indexes["dynamic"].insert((-5.0, -5.0))
    assert child.stats.size == size_before + 1
    assert engine.rebalancer.mutations("sh") == 1
    assert sharded.live_size == len(points) + len(extra) + 1
    engine.close()


def test_rebalance_preserves_custom_index_names_and_params():
    points = uniform_points(512, seed=28)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=28)
    engine.register_sharded_dataset("sh", points, num_shards=2,
                                    sharding="range", kinds=["full_scan"])
    engine.catalog.build_sharded_index("sh", "partition_tree",
                                       index_name="pt_wide", max_fanout=4)
    engine.catalog.build_sharded_index("sh", "dynamic")
    sharded = engine.catalog.sharded("sh")
    sharded.shards[0].planning_dataset().indexes["dynamic"].insert(
        (0.0, 0.0))
    engine.rebalance("sh")
    for shard in sharded.nonempty_shards():
        indexes = shard.planning_dataset().indexes
        assert set(indexes) == {"full_scan", "pt_wide", "dynamic"}
        record = shard.planning_dataset().build_records["pt_wide"]
        assert record.params == {"max_fanout": 4}
    # The insert went through a catalog-built (engine-unwired) index;
    # the re-split must still carry it into the new shards.
    assert sharded.size == len(points) + 1
    hit = engine.query("sh", LinearConstraint.from_inequality((1e-9, 1.0),
                                                              0.0))
    assert (0.0, 0.0) in {tuple(p) for p in hit.points}
    engine.close()


def test_rebalance_removes_previous_generation_block_files(tmp_path):
    points = uniform_points(256, seed=29)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=29, backend="file",
                         data_dir=str(tmp_path))
    engine.register_sharded_dataset("sh", points, num_shards=2,
                                    sharding="range",
                                    kinds=["full_scan", "dynamic"])
    sharded = engine.catalog.sharded("sh")
    sharded.shards[0].planning_dataset().indexes["dynamic"].insert(
        (0.0, 0.0))
    files_before = sorted(p.name for p in tmp_path.iterdir())
    engine.rebalance("sh")
    files_after = sorted(p.name for p in tmp_path.iterdir())
    # Same file count: generation-0 files removed, @g1 files created.
    assert len(files_after) == len(files_before)
    assert all("_000040g1" in name for name in files_after)  # escaped "@g1"
    engine.close()


def test_shard_replicas_share_one_selectivity_model():
    points = uniform_points(512, seed=30)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=30,
                         stats_model="histogram")
    engine.register_sharded_dataset("sh", points, num_shards=2,
                                    sharding="range", replicas=3)
    for shard in engine.catalog.sharded("sh").nonempty_shards():
        models = {id(replica.stats) for replica in shard.replicas}
        assert len(models) == 1
    engine.close()


def test_rebalance_records_event_in_engine_stats():
    engine, __, __, __ = _skewed_insert_scenario()
    engine.rebalance("sh")
    summary = engine.summary()["rebalances"]
    assert summary["count"] == 1
    assert summary["by_dataset"] == {"sh": 1}
    event = summary["events"][0]
    assert event["reason"] == "manual"
    assert event["generation"] == 1
    engine.close()


def test_auto_rebalance_triggers_on_serving_entry():
    engine, points, extra, queries = _skewed_insert_scenario(
        auto_rebalance=True, rebalance_threshold=1.5,
        rebalance_min_mutations=50)
    assert engine.rebalancer.should_rebalance("sh")
    engine.query("sh", queries[0])
    summary = engine.summary()["rebalances"]
    assert summary["count"] == 1
    assert summary["events"][0]["reason"] == "auto"
    # Balanced again: no second trigger on the next query.
    engine.query("sh", queries[1])
    assert engine.summary()["rebalances"]["count"] == 1
    engine.close()


def test_reinserting_tombstoned_point_does_not_duplicate():
    from repro import DynamicPartitionTreeIndex
    points = uniform_points(64, seed=33)
    index = DynamicPartitionTreeIndex(points, block_size=BLOCK_SIZE)
    victim = tuple(points[0])
    assert index.delete(victim)
    index.insert(victim)
    assert index.size == len(points)
    everything = LinearConstraint(coeffs=(0.0,), offset=1e9)
    reported = [tuple(p) for p in index.query(everything)]
    assert len(reported) == len(set(reported)) == len(points)
    assert sorted(index.live_points()) == sorted(map(tuple, points))


def test_failed_build_leaves_no_phantom_suite_record():
    points = uniform_points(256, seed=34)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=34)
    engine.register_sharded_dataset("sh", points, num_shards=2,
                                    sharding="range",
                                    kinds=["full_scan", "dynamic"])
    with pytest.raises(KeyError):
        engine.catalog.build_sharded_index("sh", "nosuchkind")
    engine.catalog.sharded("sh").shards[0].planning_dataset() \
        .indexes["dynamic"].insert((0.0, 0.0))
    report = engine.rebalance("sh")  # must not replay the failed build
    assert report.generation == 1
    names = {build["index_name"]
             for build in engine.catalog.sharded("sh").suite_builds}
    assert names == {"full_scan", "dynamic"}
    engine.close()


def test_model_kind_override_does_not_inherit_catalog_params():
    points = uniform_points(256, seed=35)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=35,
                         stats_model="histogram",
                         stats_params={"num_buckets": 16})
    # A uniform override must not receive histogram-specific params.
    engine.register_dataset("u", points, stats_model="uniform")
    assert engine.catalog.dataset("u").stats.name == "uniform"
    engine.close()


def test_rebalance_rejects_hash_and_unsharded_datasets():
    points = uniform_points(256, seed=21)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=21)
    engine.register_sharded_dataset("hashed", points, num_shards=2,
                                    sharding="hash")
    engine.register_dataset("plain", points)
    with pytest.raises(ValueError):
        engine.rebalance("hashed")
    with pytest.raises(KeyError):
        engine.rebalance("plain")
    assert not engine.rebalancer.should_rebalance("hashed")
    assert not engine.rebalancer.should_rebalance("plain")
    engine.close()


def test_stale_sharded_plan_is_replanned_after_rebalance():
    engine, points, extra, queries = _skewed_insert_scenario()
    live = np.concatenate([points, extra])
    constraint = queries[0]
    stale_plan = engine.planner.plan("sh", constraint)
    engine.rebalance("sh")
    key = ("sh", (constraint.coeffs, constraint.offset))
    answer = engine.executor.core.dispatch("sh", constraint, stale_plan,
                                           key, clear_cache=False)
    assert {tuple(p) for p in answer.points} == \
        brute_force_halfspace(live, constraint)
    engine.close()


# ----------------------------------------------------------------------
# serving satellites
# ----------------------------------------------------------------------
def test_scaled_count_estimate_properties():
    estimate, (low, high) = scaled_count_estimate(10, 100, 1000)
    assert estimate == 100
    assert low <= estimate <= high
    assert low >= 10 and high <= 1000
    # Full-coverage sample is exact.
    assert scaled_count_estimate(7, 50, 50) == (140 * 0 + 7, (7, 7))
    # Zero hits still admit a rule-of-three upper bound.
    __, (zero_low, zero_high) = scaled_count_estimate(0, 100, 1000)
    assert zero_low == 0 and 0 < zero_high <= 1000
    assert scaled_count_estimate(5, 0, 100) == (0, (0, 0))
    # A sample larger than the population cannot push the point estimate
    # below the observed hits (it stays inside its own interval).
    weird_estimate, (weird_low, weird_high) = scaled_count_estimate(3, 7, 5)
    assert weird_low <= weird_estimate <= weird_high
    assert weird_estimate >= 3


def test_degraded_answer_carries_sample_rate_and_interval():
    points = uniform_points(2000, seed=22)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=22, sample_size=400)
    engine.register_dataset("d", points)
    constraints = halfspace_queries_with_selectivity(points, 3, 0.3,
                                                     seed=23)
    plan = engine.explain("d", constraints[0])
    budget = TenantBudget(ios_per_s=0.001, burst=plan.estimated_ios + 1.0,
                          policy="degrade")
    requests = [ServingRequest(tenant="soft", dataset="d", constraint=c)
                for c in constraints]
    result = engine.serve_async(requests, budgets={"soft": budget},
                                max_concurrency=1)
    degraded = [item for item in result.requests
                if item.outcome == "degraded"]
    assert degraded
    for item in degraded:
        answer = item.answer
        assert answer.sample_rate == pytest.approx(400 / 2000)
        low, high = answer.count_interval
        assert low <= answer.estimated_count <= high
        assert answer.estimated_count == int(round(
            answer.count / answer.sample_rate))
        truth = len(brute_force_halfspace(points,
                                          item.request.constraint))
        assert low <= truth <= high
    # The metrics records carry the rate and the estimate too.
    records = [record for record in engine.stats.records if record.degraded]
    assert records and all(r.sample_rate == pytest.approx(0.2)
                           for r in records)
    assert all(r.estimated_count is not None for r in records)
    engine.close()


def test_caller_held_admission_persists_across_serve_async_calls():
    points = uniform_points(1024, seed=24)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=24)
    engine.register_dataset("d", points)
    constraints = halfspace_queries_with_selectivity(points, 4, 0.2,
                                                     seed=25)
    plan = engine.explain("d", constraints[0])
    budget = TenantBudget(ios_per_s=1.0, burst=plan.estimated_ios * 1.2,
                          policy="reject")
    controller = AdmissionController({"slow": budget})
    first = engine.serve_async(
        [ServingRequest(tenant="slow", dataset="d",
                        constraint=constraints[0])],
        admission=controller)
    assert first.outcomes() == {"served": 1}
    drained = controller.tokens("slow")
    assert drained < budget.burst * 0.5
    # The second wave sees the drained bucket (fresh budgets would not).
    second = engine.serve_async(
        [ServingRequest(tenant="slow", dataset="d",
                        constraint=constraints[1])],
        admission=controller)
    assert second.outcomes() == {"rejected": 1}
    with pytest.raises(ValueError):
        engine.serve_async([], budgets={"slow": budget},
                           admission=controller)
    engine.close()


def test_qerror_helper_is_symmetric_and_clamped():
    assert q_error(10, 10) == 1.0
    assert q_error(0, 0) == 1.0
    assert q_error(50, 5) == 10.0
    assert q_error(5, 50) == 10.0
    assert q_error(0, 8) == 8.0


# ----------------------------------------------------------------------
# workload-adaptive histogram directions (q-error feedback)
# ----------------------------------------------------------------------
def test_note_estimation_feedback_is_a_noop_on_base_models():
    points = uniform_points(256, seed=3)
    sample = np.asarray(points)[:64]
    model = make_model("uniform", np.asarray(points), sample, seed=3)
    constraint = LinearConstraint(coeffs=(0.5,), offset=0.1)
    before = model.describe()
    model.note_estimation_feedback(constraint, 10.0, 1000)
    assert model.describe() == before


def test_adaptive_histogram_replaces_persistently_bad_direction():
    rng = np.random.default_rng(11)
    points = np.asarray(diagonal_points(2048, seed=11))
    sample = points[rng.choice(len(points), size=256, replace=False)]
    # Start from one deliberately useless direction plus an axis, with
    # adaptation armed.  min_cosine=-1 forces histogram answers so the
    # bad direction actually prices queries (and accrues q-error).
    model = HistogramModel(points, directions=[(1.0, 0.0), (0.0, 1.0)],
                           num_buckets=32, min_cosine=-1.0,
                           sample=sample, seed=11,
                           adapt_after=8, adapt_qerror=2.0)
    assert model.adaptations == 0
    constraint = rotated_diagonal_query(points, angle=0.0,
                                        selectivity=0.01)
    # Feed persistently terrible feedback against whichever direction
    # prices this constraint.
    for __ in range(16):
        expected = model.estimate_output(constraint)
        model.note_estimation_feedback(constraint, expected,
                                       actual=max(1000, expected * 50))
        if model.adaptations:
            break
    assert model.adaptations >= 1
    assert model.describe()["adaptations"] == model.adaptations


def test_adaptive_histogram_recruits_missed_query_direction():
    points = np.asarray(uniform_points(1024, seed=5))
    sample = points[:256]
    # One canonical direction: (0, 1), the residual direction of
    # coeffs=(0.0,) constraints.
    model = HistogramModel(points, directions=[(0.0, 1.0)],
                           num_buckets=32, sample=sample, seed=5,
                           adapt_after=4, adapt_qerror=2.0)
    # Queries far from the only canonical direction fall back to the
    # sample and record their direction as a replacement candidate.
    off_axis = LinearConstraint(coeffs=(5.0,), offset=0.0)
    covered = LinearConstraint(coeffs=(0.0,), offset=0.0)
    for __ in range(4):
        model.note_estimation_feedback(off_axis, 1.0, 500)   # missed
    directions_before = model._directions.copy()
    for __ in range(4):
        model.note_estimation_feedback(covered, 1.0, 800)    # terrible
    assert model.adaptations == 1
    # The replacement is the missed query's unit direction, not the old
    # axis direction.
    unit, __ = constraint_direction(off_axis)
    cosines = model._directions @ unit
    assert np.max(cosines) > 0.999
    assert not np.allclose(model._directions, directions_before)


def test_adapt_knobs_flow_through_engine_stats_params():
    points = uniform_points(512, seed=9)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=9,
                         stats_model="histogram",
                         stats_params={"num_buckets": 16,
                                       "adapt_after": 4,
                                       "adapt_qerror": 1.5})
    engine.register_dataset("d", points, kinds=["dynamic", "full_scan"])
    model = engine.catalog.dataset("d").stats
    assert model._adapt_after == 4 and model._adapt_qerror == 1.5
    # Served queries feed the model through the executor's finish path.
    for constraint in halfspace_queries_with_selectivity(
            np.asarray(points), 6, 0.1, seed=9):
        engine.query("d", constraint, clear_cache=True)
    assert int(np.sum(model._dir_observations)) + model.fallbacks > 0
    engine.close()


# ----------------------------------------------------------------------
# provisional-shard stats upgrade (lazy materialization satellite)
# ----------------------------------------------------------------------
def test_materialized_shard_upgrades_to_configured_model():
    rng = np.random.default_rng(21)
    # A tiny hash-sharded build leaves at least one shard empty, so it
    # lazily materializes on first insert with provisional stats.
    build = [(float(i), float(i)) for i in range(4)]
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=21,
                         stats_model="histogram",
                         stats_params={"num_buckets": 8},
                         stats_upgrade_min_points=16)
    engine.register_sharded_dataset("lazy", build, num_shards=4,
                                    sharding="hash", replicas=2,
                                    kinds=["dynamic", "full_scan"])
    sharded = engine.catalog.sharded("lazy")
    empty = next(s for s in sharded.shards if s.is_empty)
    probes = [p for p in ((float(a), float(b)) for a, b in
                          rng.uniform(10.0, 20.0, size=(4096, 2)))
              if sharded.router.shard_of(p) == empty.shard_id]
    assert len(probes) >= 18
    for point in probes[:15]:
        engine.insert("lazy", point)
    shard = sharded.shards[empty.shard_id]
    assert shard.stats_provisional                  # still below the bar
    assert shard.planning_dataset().stats.name == "uniform"
    engine.insert("lazy", probes[15])               # the 16th point
    assert not shard.stats_provisional
    assert shard.planning_dataset().stats.name == "histogram"
    # Replicas share the upgraded model object.
    assert all(replica.stats is shard.planning_dataset().stats
               for replica in shard.replicas)
    # Later mutations keep flowing into the upgraded model exactly once.
    before = shard.planning_dataset().stats.observed_inserts
    engine.insert("lazy", probes[16])
    assert shard.planning_dataset().stats.observed_inserts == before + 1
    engine.close()


def test_stats_upgrade_disabled_keeps_provisional_model():
    rng = np.random.default_rng(22)
    build = [(float(i), float(i)) for i in range(4)]
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=22,
                         stats_model="histogram",
                         stats_params={"num_buckets": 8},
                         stats_upgrade_min_points=0)
    engine.register_sharded_dataset("lazy", build, num_shards=4,
                                    sharding="hash", replicas=1,
                                    kinds=["dynamic", "full_scan"])
    sharded = engine.catalog.sharded("lazy")
    empty = next(s for s in sharded.shards if s.is_empty)
    probes = [p for p in ((float(a), float(b)) for a, b in
                          rng.uniform(10.0, 20.0, size=(4096, 2)))
              if sharded.router.shard_of(p) == empty.shard_id]
    assert len(probes) >= 40
    for point in probes[:40]:
        engine.insert("lazy", point)
    shard = sharded.shards[empty.shard_id]
    assert shard.stats_provisional
    assert shard.planning_dataset().stats.name == "uniform"
    engine.close()

# ----------------------------------------------------------------------
# conformal calibration (distribution-free error bars)
# ----------------------------------------------------------------------
def test_conformal_cold_start_returns_no_interval():
    calibrator = ConformalCalibrator(coverage=0.95, min_calibration=32)
    assert calibrator.interval("d", 100) is None
    for i in range(31):
        calibrator.observe("d", 100 + i, 100)
    assert not calibrator.ready("d")
    assert calibrator.interval("d", 100) is None
    calibrator.observe("d", 100, 100)
    assert calibrator.ready("d")
    low, high = calibrator.interval("d", 100)
    assert low <= 100 <= high


def test_conformal_interval_monotone_in_nominal_coverage():
    rng = np.random.default_rng(40)
    calibrator = ConformalCalibrator(coverage=0.5, min_calibration=16)
    for __ in range(200):
        actual = int(rng.integers(50, 500))
        estimate = actual + int(rng.normal(scale=30))
        calibrator.observe("d", estimate, actual)
    widths = []
    for coverage in (0.5, 0.7, 0.85, 0.95):
        low, high = calibrator.interval("d", 200, coverage=coverage)
        assert low <= 200 <= high
        widths.append(high - low)
    # Higher nominal coverage can never narrow the interval: the
    # conformity quantile is monotone in its rank.
    assert widths == sorted(widths)
    quantiles = [calibrator.quantile("d", coverage=c)
                 for c in (0.5, 0.7, 0.85, 0.95)]
    assert quantiles == sorted(quantiles)


def test_conformal_interval_respects_population_and_floor():
    calibrator = ConformalCalibrator(coverage=0.9, min_calibration=8)
    for __ in range(20):
        calibrator.observe("d", 10, 40)  # large scaled residuals
    low, high = calibrator.interval("d", 5, population=50)
    assert low >= 0 and high <= 50
    assert low <= 5 <= high


def test_conformal_empirical_coverage_is_prequential():
    """Each pair is scored against the interval built *before* it lands."""
    rng = np.random.default_rng(41)
    calibrator = ConformalCalibrator(coverage=0.9, window=512,
                                     min_calibration=32)
    for __ in range(600):
        actual = int(rng.integers(100, 1000))
        estimate = max(0, actual + int(rng.normal(scale=0.05 * actual)))
        calibrator.observe("d", estimate, actual)
    description = calibrator.describe()["datasets"]["d"]
    assert description["intervals"] > 400
    assert abs(description["empirical_coverage"] - 0.9) < 0.05


def test_plans_carry_conformal_output_interval_once_warm():
    points = uniform_points(1024, seed=42)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=42,
                         conformal_min_calibration=8)
    engine.register_dataset("d", points)
    constraints = halfspace_queries_with_selectivity(
        np.asarray(points), 30, 0.15, seed=43)
    cold = engine.explain("d", constraints[0])
    assert cold.output_interval is None          # nothing calibrated yet
    for constraint in constraints[:25]:
        engine.query("d", constraint, clear_cache=True)
    warm = engine.explain("d", constraints[-1])
    low, high = warm.output_interval
    assert low <= warm.expected_output <= high
    assert "in [" in warm.explain()
    engine.close()


def test_sharded_plan_interval_sums_shard_bands():
    points = uniform_points(2048, seed=44)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=44,
                         conformal_min_calibration=8)
    engine.register_sharded_dataset("sh", points, num_shards=2,
                                    sharding="range")
    constraints = halfspace_queries_with_selectivity(
        np.asarray(points), 30, 0.2, seed=45)
    for constraint in constraints[:25]:
        engine.query("sh", constraint, clear_cache=True)
    plan = engine.explain("sh", constraints[-1])
    assert isinstance(plan, ShardedPlan)
    if plan.output_interval is not None:
        lows = sum(p.output_interval[0] for __, p in plan.shard_plans
                   if p.output_interval)
        highs = sum(p.output_interval[1] for __, p in plan.shard_plans
                    if p.output_interval)
        assert plan.output_interval == (lows, highs)
    engine.close()


def test_degraded_answer_prefers_conformal_with_normal_fallback():
    points = uniform_points(2000, seed=46)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=46, sample_size=400,
                         conformal_min_calibration=8)
    engine.register_dataset("d", points)
    constraints = halfspace_queries_with_selectivity(
        np.asarray(points), 30, 0.25, seed=47)

    def degrade_wave(wave):
        # The first (uncached) request drains the bucket; the rest of
        # the wave exceeds it and degrades.
        plan = engine.explain("d", wave[0])
        budget = TenantBudget(ios_per_s=0.001,
                              burst=plan.estimated_ios + 1.0,
                              policy="degrade")
        result = engine.serve_async(
            [ServingRequest(tenant="probe", dataset="d", constraint=c)
             for c in wave],
            budgets={"probe": budget}, max_concurrency=1)
        return [item.answer for item in result.requests
                if item.outcome == "degraded"]

    # Cold start: no calibration pairs yet, so the interval is the
    # normal approximation and says so.
    cold = degrade_wave(constraints[25:28])
    assert cold and all(a.interval_source == "normal_fallback"
                        for a in cold)
    for constraint in constraints[:25]:
        engine.query("d", constraint, clear_cache=True)
    warm = degrade_wave(halfspace_queries_with_selectivity(
        np.asarray(points), 3, 0.2, seed=48))
    assert warm and all(a.interval_source == "conformal" for a in warm)
    for answer in warm:
        low, high = answer.count_interval
        assert low <= answer.estimated_count <= high
        assert low >= answer.count            # hits are real points
    # The served records label the interval source too.
    sources = {record.interval_source
               for record in engine.stats.records if record.degraded}
    assert sources == {"normal_fallback", "conformal"}
    engine.close()


# ----------------------------------------------------------------------
# the e-weighted ensemble model
# ----------------------------------------------------------------------
def test_ensemble_estimates_are_weighted_blend_of_members():
    points = np.asarray(uniform_points(1024, seed=50))
    sample = points[:256].copy()
    model = make_model("ensemble", points, sample, seed=50)
    assert model.name == "ensemble"
    assert set(model.weights) == {"uniform", "histogram"}
    assert sum(model.weights.values()) == pytest.approx(1.0)
    constraint = LinearConstraint(coeffs=(0.3,), offset=0.1)
    members = {m.name: m.estimate_selectivity(constraint)
               for m in model.members}
    blended = sum(model.weights[name] * value
                  for name, value in members.items())
    assert model.estimate_selectivity(constraint) == pytest.approx(blended)


def test_ensemble_downweights_misspecified_member():
    """On the §1.2 diagonal the uniform sample's estimates are far worse
    than the histogram's; e-value-style updates must shift the weight."""
    points = np.asarray(diagonal_points(4096, noise=5e-3, seed=51))
    rng = np.random.default_rng(52)
    sample = points[rng.choice(len(points), 256, replace=False)]
    model = make_model("ensemble", points, sample.copy(), seed=51)
    selectivities = np.exp(np.linspace(np.log(0.002), np.log(0.2), 30))
    for selectivity in selectivities:
        constraint = rotated_diagonal_query(
            points, angle=float(rng.normal(scale=2e-4)),
            selectivity=float(selectivity))
        actual = sum(constraint.below(p) for p in points)
        model.note_estimation_feedback(
            constraint, model.estimate_output(constraint), actual)
    weights = model.weights
    assert weights["histogram"] > 0.75
    assert weights["histogram"] > weights["uniform"]
    qerror = model.member_qerror()
    assert qerror["histogram"] < qerror["uniform"]
    description = model.describe()
    assert description["feedback"] == len(selectivities)
    assert set(description["members"]) == {"uniform", "histogram"}


def test_ensemble_forwards_mutations_to_both_members():
    points = np.asarray(uniform_points(512, seed=53))
    model = make_model("ensemble", points, points[:128].copy(), seed=53)
    before = model.size
    model.observe_insert((0.5, 0.5))
    assert model.size == before + 1
    assert all(m.size == before + 1 for m in model.members)
    model.observe_delete((0.5, 0.5))
    assert model.size == before


def test_ensemble_flows_through_engine_and_summary_stats():
    points = uniform_points(800, seed=54)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=54,
                         stats_model="ensemble")
    engine.register_dataset("d", points, kinds=["dynamic", "full_scan"])
    assert engine.catalog.dataset("d").stats.name == "ensemble"
    for constraint in halfspace_queries_with_selectivity(
            np.asarray(points), 8, 0.1, seed=55):
        engine.query("d", constraint, clear_cache=True)
    stats = engine.summary()["stats"]["d"]
    assert stats["model"] == "ensemble"
    assert set(stats["weights"]) == {"uniform", "histogram"}
    assert stats["feedback"] == 8
    # The histogram member's adaptation counter and per-direction
    # q-error surface under the member entry.
    member = stats["members"]["histogram"]
    assert member["adaptations"] >= 0
    assert isinstance(member["direction_qerror"], list)
    engine.close()


def test_process_workers_parity_with_ensemble_stats():
    """REPRO_WORKERS=process must stay bit-parity for an
    ensemble-configured dataset: identical answers and I/O counters."""
    points = uniform_points(1536, seed=56)
    constraints = halfspace_queries_with_selectivity(
        np.asarray(points), 6, 0.1, seed=57)

    def run(mode):
        engine = QueryEngine(block_size=BLOCK_SIZE, seed=56,
                             stats_model="ensemble", workers=mode)
        engine.register_sharded_dataset(
            "sh", points, num_shards=2, sharding="range", replicas=2,
            kinds=["dynamic", "full_scan"])
        observed = []
        for constraint in constraints:
            answer = engine.query("sh", constraint, clear_cache=True)
            observed.append((sorted(map(tuple, answer.points)),
                             answer.ios.total, answer.ios.cache_hits))
        engine.insert("sh", (0.01, 0.02))
        answer = engine.query("sh", constraints[0], clear_cache=True)
        observed.append((sorted(map(tuple, answer.points)),
                         answer.ios.total))
        description = engine.cluster.describe() if engine.cluster else None
        engine.close()
        return observed, description

    inprocess, __ = run("inprocess")
    process, description = run("process")
    assert inprocess == process
    # The worker specs carried the ensemble + conformal config, and the
    # topology snapshot reports each worker's address, restart count and
    # write-log high-water mark.
    for listing in description["workers"].values():
        for entry in listing:
            assert entry["address"].startswith("127.0.0.1:")
            assert entry["restarts"] == 0
            assert entry["last_seq"] >= 0


def test_worker_spec_carries_stats_and_conformal_config():
    from repro.engine.cluster.worker import ShardWorker, build_spec
    points = np.asarray(uniform_points(256, seed=58))
    spec = build_spec(
        "sh", 0, 0, "sh#0", points, 2, BLOCK_SIZE, 4, 128, 58,
        [{"kind": "full_scan", "index_name": "full_scan", "params": {}}],
        [], stats_model="ensemble", stats_params={},
        conformal={"coverage": 0.9, "window": 128, "min_calibration": 16})
    worker = ShardWorker(spec)
    assert worker.dataset.stats.name == "ensemble"
    stats = worker.handle({"op": "stats"})
    assert stats["stats_model"] == "ensemble"
    assert stats["conformal"]["coverage"] == 0.9
