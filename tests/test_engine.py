"""Tests for the query-serving subsystem (catalog, planner, executor)."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import brute_force_halfspace

from repro import ConstraintConjunction, LinearConstraint, QueryEngine
from repro.engine import Catalog, EngineStats, Planner, ServedQueryRecord
from repro.engine.calibration import CalibrationStore
from repro.engine.metrics import percentile
from repro.workloads import (
    halfspace_queries_with_selectivity,
    mixed_tenant_workload,
    uniform_points,
)

BLOCK_SIZE = 32


@pytest.fixture(scope="module")
def points2d():
    return uniform_points(4096, seed=11)


@pytest.fixture(scope="module")
def engine2d(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("uniform2d", points2d)
    return engine


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
def test_catalog_builds_suite_and_records_stats(points2d):
    catalog = Catalog(block_size=BLOCK_SIZE, seed=3)
    catalog.register_dataset("d", points2d)
    records = catalog.build_suite("d")
    kinds = {record.kind for record in records}
    assert kinds == {"halfplane2d", "partition_tree", "full_scan"}
    for record in records:
        assert record.space_blocks > 0
        assert record.build_ios is not None and record.build_ios.writes > 0
        assert record.build_seconds >= 0.0
    assert set(catalog.indexes("d")) == kinds


def test_catalog_rejects_bad_registrations(points2d):
    catalog = Catalog(block_size=BLOCK_SIZE)
    catalog.register_dataset("d", points2d)
    with pytest.raises(ValueError):
        catalog.register_dataset("d", points2d)          # duplicate name
    with pytest.raises(KeyError):
        catalog.build_index("d", "no_such_kind")
    with pytest.raises(KeyError):
        catalog.dataset("missing")
    catalog.register_dataset("d3", uniform_points(64, dimension=3, seed=1))
    with pytest.raises(ValueError):
        catalog.build_index("d3", "halfplane2d")          # wrong dimension


def test_catalog_selectivity_estimate_tracks_truth(points2d):
    catalog = Catalog(block_size=BLOCK_SIZE, sample_size=1024, seed=2)
    dataset = catalog.register_dataset("d", points2d)
    for target in (0.05, 0.5, 0.95):
        constraint = halfspace_queries_with_selectivity(
            points2d, 1, target, seed=int(target * 100))[0]
        estimate = dataset.estimate_selectivity(constraint)
        assert abs(estimate - target) < 0.1


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
def test_planner_picks_optimal_structure_for_selective_query(engine2d,
                                                             points2d):
    selective = halfspace_queries_with_selectivity(points2d, 1, 0.01,
                                                   seed=7)[0]
    plan = engine2d.explain("uniform2d", selective)
    assert plan.index_name == "halfplane2d"
    by_name = {est.index_name: est for est in plan.estimates}
    assert by_name["halfplane2d"].cost < by_name["full_scan"].cost
    assert by_name["halfplane2d"].cost < by_name["partition_tree"].cost


def test_planner_picks_scan_for_reporting_heavy_query(engine2d, points2d):
    # Everything satisfies the constraint: t = n, so the scan's n I/Os beat
    # any structure paying a search term on top of the output term.
    everything = LinearConstraint(coeffs=(0.0,), offset=1e9)
    plan = engine2d.explain("uniform2d", everything)
    assert plan.expected_output == len(points2d)
    assert plan.index_name == "full_scan"


def test_planner_picks_scan_for_tiny_dataset():
    engine = QueryEngine(block_size=64, seed=1)
    engine.register_dataset("tiny", uniform_points(32, seed=4))
    plan = engine.explain("tiny", LinearConstraint(coeffs=(0.3,), offset=0.0))
    assert plan.index_name == "full_scan"
    assert plan.estimated_ios == pytest.approx(1.0)


def test_planner_calibration_reroutes_after_observations(points2d):
    catalog = Catalog(block_size=BLOCK_SIZE, seed=3)
    catalog.register_dataset("d", points2d)
    catalog.build_suite("d")
    planner = Planner(catalog, ewma_alpha=0.5)
    selective = halfspace_queries_with_selectivity(points2d, 1, 0.01,
                                                   seed=9)[0]
    plan = planner.plan("d", selective)
    assert plan.index_name == "halfplane2d"
    # Pretend the optimal structure is consistently 100x its model cost.
    model = plan.chosen.model_ios
    for __ in range(3):
        planner.observe("d", "halfplane2d", model, int(model * 100))
    assert planner.calibration_factor("d", "halfplane2d") > 1.0
    assert planner.plan("d", selective).index_name != "halfplane2d"


def test_engine_calibrate_probes_measure_real_constants(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    probes = halfspace_queries_with_selectivity(points2d, 2, 0.05, seed=43)
    spent = engine.calibrate("d", probes)
    assert spent > 0
    state = engine.planner.export_calibration()
    assert set(state) == {"d/halfplane2d", "d/partition_tree", "d/full_scan"}
    # The scan's model is exact, so its learned constant stays at ~1.
    assert state["d/full_scan"]["factor"] == pytest.approx(1.0, abs=0.05)
    for payload in state.values():
        assert payload["observations"] == len(probes)


def test_planner_calibration_roundtrips(points2d):
    catalog = Catalog(block_size=BLOCK_SIZE, seed=3)
    catalog.register_dataset("d", points2d)
    catalog.build_suite("d")
    planner = Planner(catalog)
    planner.observe("d", "halfplane2d", 10.0, 25)
    state = planner.export_calibration()
    fresh = Planner(catalog)
    fresh.load_calibration(state)
    assert fresh.calibration_factor("d", "halfplane2d") == pytest.approx(
        planner.calibration_factor("d", "halfplane2d"))


# ----------------------------------------------------------------------
# calibration persistence
# ----------------------------------------------------------------------
def test_calibration_store_roundtrips_through_engine(points2d, tmp_path):
    path = str(tmp_path / "calibration.json")
    first = QueryEngine(block_size=BLOCK_SIZE, seed=5, calibration_path=path)
    first.register_dataset("d", points2d)
    probes = halfspace_queries_with_selectivity(points2d, 2, 0.05, seed=91)
    first.calibrate("d", probes)
    learned = first.planner.export_calibration()
    first.save_calibration()

    restarted = QueryEngine(block_size=BLOCK_SIZE, seed=5,
                            calibration_path=path)
    restarted.register_dataset("d", points2d)
    restored = restarted.planner.export_calibration()
    assert set(restored) == set(learned)
    for key in learned:
        assert restored[key]["factor"] == pytest.approx(
            learned[key]["factor"])


def test_calibration_store_ages_out_stale_entries(tmp_path):
    path = str(tmp_path / "calibration.json")
    store = CalibrationStore(path, max_age_s=3600.0)
    store.save({
        "d/fresh": {"factor": 2.0, "observations": 3, "updated_at": 10_000.0},
        "d/stale": {"factor": 9.0, "observations": 7, "updated_at": 1_000.0},
    })
    state = store.load(now=10_100.0)
    assert set(state) == {"d/fresh"}
    # max_age_s <= 0 keeps everything
    keep_all = CalibrationStore(path, max_age_s=0).load(now=10_100.0)
    assert set(keep_all) == {"d/fresh", "d/stale"}


def test_calibration_store_tolerates_missing_and_corrupt_files(tmp_path):
    missing = CalibrationStore(str(tmp_path / "nope.json"))
    assert missing.load() == {}
    corrupt_path = tmp_path / "bad.json"
    corrupt_path.write_text("{not json")
    assert CalibrationStore(str(corrupt_path)).load() == {}
    wrong_shape = tmp_path / "list.json"
    wrong_shape.write_text("[1, 2, 3]")
    assert CalibrationStore(str(wrong_shape)).load() == {}


def test_save_calibration_without_path_raises(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    with pytest.raises(RuntimeError):
        engine.save_calibration()


# ----------------------------------------------------------------------
# result-cache invalidation
# ----------------------------------------------------------------------
def test_dynamic_insert_flushes_result_cache(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d, kinds=["dynamic", "full_scan"])
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.95,
                                                    seed=97)[0]
    first = engine.query("d", constraint)
    assert engine.query("d", constraint).from_result_cache

    # Insert a point that satisfies the constraint; the cached answer is
    # now stale and must be flushed by the mutation hook.
    dynamic = engine.catalog.indexes("d")["dynamic"]
    inside = min(points2d, key=lambda p: p[-1] - constraint.coeffs[0] * p[0])
    new_point = (float(inside[0]), float(inside[1]) - 0.5)
    assert constraint.below(new_point)
    dynamic.insert(new_point)

    after = engine.query("d", constraint)
    assert not after.from_result_cache
    # The mutation marks every statically-built sibling stale, so the
    # planner must route to the dynamic index and report the new point.
    assert after.index_name == "dynamic"
    assert tuple(new_point) in {tuple(p) for p in after.points}
    assert after.count == first.count + 1


def test_mutated_dataset_stops_routing_to_static_indexes(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d,
                            kinds=["dynamic", "partition_tree", "full_scan"])
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.3,
                                                    seed=103)[0]
    assert len(engine.explain("d", constraint).estimates) == 3
    engine.catalog.indexes("d")["dynamic"].insert((0.0, -2.0))
    plan = engine.explain("d", constraint)
    assert [est.index_name for est in plan.estimates] == ["dynamic"]
    answer = engine.query("d", constraint)
    assert (0.0, -2.0) in {tuple(p) for p in answer.points}


def test_invalidate_dataset_is_scoped(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("a", points2d)
    engine.register_dataset("b", points2d)
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.05,
                                                    seed=101)[0]
    engine.query("a", constraint)
    engine.query("b", constraint)
    dropped = engine.executor.invalidate_dataset("a")
    assert dropped == 1
    assert not engine.query("a", constraint).from_result_cache
    assert engine.query("b", constraint).from_result_cache


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------
def test_batch_answers_match_brute_force_for_every_index(points2d):
    # Every 2-D-capable kind participates; whatever the planner routes to,
    # the answers must match the in-memory filter, and each index must
    # individually pass its own validation on the same constraints.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    kinds = ["halfplane2d", "partition_tree", "shallow_tree", "full_scan",
             "rtree", "kdb_tree", "quadtree", "paged_cgl"]
    engine.register_dataset("d", points2d, kinds=kinds)
    constraints = halfspace_queries_with_selectivity(points2d, 4, 0.05,
                                                     seed=13)
    batch = engine.serve_batch("d", constraints)
    for constraint, answer in zip(constraints, batch.queries):
        assert {tuple(p) for p in answer.points} == brute_force_halfspace(
            points2d, constraint)
    for index in engine.catalog.indexes("d").values():
        for constraint in constraints:
            assert index.validate_against_scan(constraint, points2d)


def test_result_cache_serves_repeats_for_free(engine2d, points2d):
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.02,
                                                    seed=21)[0]
    first = engine2d.query("uniform2d", constraint)
    second = engine2d.query("uniform2d", constraint)
    assert not first.from_result_cache
    assert second.from_result_cache
    assert second.total_ios == 0
    assert second.points == first.points


def test_batch_dedups_repeated_constraints(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraints = halfspace_queries_with_selectivity(points2d, 3, 0.03,
                                                     seed=23)
    batch = engine.serve_batch("d", constraints + constraints)
    assert batch.executed == 3
    assert batch.result_cache_hits == 3
    for constraint, answer in zip(constraints + constraints, batch.queries):
        assert {tuple(p) for p in answer.points} == brute_force_halfspace(
            points2d, constraint)


def test_warm_batch_beats_independent_cold_queries(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraints = halfspace_queries_with_selectivity(points2d, 8, 0.1,
                                                     seed=29)
    requests = constraints + constraints[:4]

    cold_total = 0
    indexes = engine.catalog.indexes("d")
    for constraint in requests:
        plan = engine.explain("d", constraint)
        result = indexes[plan.index_name].query_with_stats(constraint,
                                                           clear_cache=True)
        cold_total += result.total_ios

    batch = engine.serve_batch("d", requests, warm_cache=True)
    assert batch.total_ios < cold_total


def test_warm_batch_restores_buffer_pool(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, cache_blocks=4,
                         warm_cache_blocks=128, seed=5)
    engine.register_dataset("d", points2d)
    store = engine.catalog.dataset("d").store
    assert store.cache_blocks == 4
    engine.serve_batch("d", halfspace_queries_with_selectivity(
        points2d, 3, 0.05, seed=31))
    assert store.cache_blocks == 4


def test_threaded_workload_matches_brute_force(points2d):
    points3d = uniform_points(1024, dimension=3, seed=6)
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("flat", points2d,
                            kinds=["halfplane2d", "full_scan"])
    engine.register_dataset("deep", points3d,
                            kinds=["partition_tree", "full_scan"])
    tenants = {"flat": points2d, "deep": points3d}
    requests = mixed_tenant_workload(tenants, num_requests=24,
                                     hot_fraction=0.5, seed=37)
    result = engine.serve_workload(requests, use_threads=True)
    assert len(result.queries) == len(requests)
    for (tenant, constraint), answer in zip(requests, result.queries):
        assert answer.dataset == tenant
        assert {tuple(p) for p in answer.points} == brute_force_halfspace(
            tenants[tenant], constraint)
    assert result.result_cache_hits > 0


def test_conjunction_query_matches_filter(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    conjunction = ConstraintConjunction.of(
        LinearConstraint(coeffs=(0.4,), offset=0.2),
        LinearConstraint(coeffs=(-0.3,), offset=0.5),
    )
    answer = engine.query_conjunction("d", conjunction)
    assert sorted(tuple(p) for p in answer.points) == sorted(
        tuple(p) for p in conjunction.filter(points2d))


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_percentile_nearest_rank():
    assert percentile([], 0.5) == 0.0
    assert percentile([3.0], 0.99) == 3.0
    values = sorted(float(v) for v in range(1, 101))
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 100.0
    assert percentile(values, 0.5) == pytest.approx(50.0, abs=1.0)


def test_engine_stats_summary_and_distribution():
    stats = EngineStats()
    for ios, cached in ((10, False), (0, True), (6, False)):
        stats.record(ServedQueryRecord(
            dataset="d", index_name="halfplane2d", latency_s=0.001 * (ios + 1),
            ios=ios, reported=5, result_cache_hit=cached))
    stats.record(ServedQueryRecord(dataset="d", index_name="full_scan",
                                   latency_s=0.5, ios=128, reported=4096))
    summary = stats.summary()
    assert summary["num_queries"] == 4
    assert summary["total_ios"] == 144
    assert summary["result_cache_hits"] == 1
    assert summary["plan_distribution"] == {"halfplane2d": 3, "full_scan": 1}
    assert summary["latency_s"]["p50"] <= summary["latency_s"]["p99"]
    assert "full_scan" in stats.to_table()


def test_workload_generator_shapes_and_hot_repeats(points2d):
    tenants = {"a": points2d, "b": uniform_points(512, dimension=3, seed=8)}
    requests = mixed_tenant_workload(tenants, num_requests=100,
                                     hot_fraction=0.5, hot_pool=2, seed=41)
    assert len(requests) == 100
    seen = set()
    repeats = 0
    for tenant, constraint in requests:
        assert tenant in tenants
        assert constraint.dimension == tenants[tenant].shape[1]
        key = (tenant, constraint.coeffs, constraint.offset)
        repeats += key in seen
        seen.add(key)
    assert repeats > 10   # the hot pool produces real repeats
