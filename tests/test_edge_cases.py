"""Edge-case and failure-injection tests across the library."""

import math

import numpy as np
import pytest

from repro import (
    BlockStore,
    HalfplaneIndex2D,
    LinearConstraint,
    PartitionTreeIndex,
)
from repro.geometry.arrangement2d import compute_level
from repro.geometry.boxes import Box
from repro.geometry.envelope3d import compute_lower_envelope, conflict_lists
from repro.geometry.primitives import Hyperplane, Line2, Plane3
from repro.io.btree import BTree
from repro.io.disk_array import DiskArray
from repro.workloads import uniform_points


class TestCacheBehaviour:
    def test_warm_cache_queries_cost_less(self):
        points = uniform_points(1500, seed=1)
        store = BlockStore(block_size=32, cache_blocks=256)
        index = HalfplaneIndex2D(points, store=store, seed=2)
        constraint = LinearConstraint((0.4,), 0.0)
        cold = index.query_with_stats(constraint, clear_cache=True)
        warm = index.query_with_stats(constraint, clear_cache=False)
        assert warm.total_ios <= cold.total_ios
        assert {tuple(p) for p in warm.points} == {tuple(p) for p in cold.points}

    def test_zero_cache_store_still_correct(self):
        points = uniform_points(600, seed=3)
        store = BlockStore(block_size=16, cache_blocks=0)
        index = PartitionTreeIndex(points, store=store)
        constraint = LinearConstraint((0.2,), 0.1)
        expected = {tuple(p) for p in points if constraint.below(p)}
        assert {tuple(p) for p in index.query(constraint)} == expected


class TestDegenerateGeometry:
    def test_level_of_parallel_lines_has_no_vertices(self):
        lines = [Line2(1.0, float(i)) for i in range(6)]
        level = compute_level(lines, 3)
        assert level.complexity == 0
        assert level.line_at(0.0) == 3   # the 4th lowest parallel line

    def test_level_with_two_lines(self):
        lines = [Line2(1.0, 0.0), Line2(-1.0, 0.0)]
        lower = compute_level(lines, 0)
        upper = compute_level(lines, 1)
        assert lower.complexity == 1
        assert upper.complexity == 1
        assert lower.y_at(5.0) == pytest.approx(-5.0)
        assert upper.y_at(5.0) == pytest.approx(5.0)

    def test_duplicate_points_in_2d_index(self):
        points = [(0.25, 0.25)] * 40 + [(-0.5, 0.75)] * 10
        index = HalfplaneIndex2D(points, block_size=16, seed=4)
        constraint = LinearConstraint((0.0,), 0.5)
        result = index.query(constraint)
        assert len(result) == 40

    def test_collinear_points_partition_tree(self):
        xs = np.linspace(-1, 1, 200)
        points = np.column_stack([xs, 2 * xs + 0.1])
        tree = PartitionTreeIndex(points, block_size=16)
        constraint = LinearConstraint((2.0,), 0.1)   # the line itself: inclusive
        assert len(tree.query(constraint)) == 200
        below = LinearConstraint((2.0,), 0.0)
        assert tree.query(below) == []

    def test_envelope_of_parallel_planes(self):
        planes = [Plane3(0.2, -0.1, float(c)) for c in range(5)]
        envelope = compute_lower_envelope(planes, (-4, 4, -4, 4))
        # Only the lowest plane appears, and since every other plane lies
        # strictly above it everywhere, no plane conflicts with the envelope.
        assert {t.plane_index for t in envelope.triangles} == {0}
        lists = conflict_lists(planes, [0], envelope)
        for found in lists:
            assert found == []

    def test_single_point_every_structure(self):
        constraint_hit = LinearConstraint((0.0,), 1.0)
        constraint_miss = LinearConstraint((0.0,), -1.0)
        for cls in (HalfplaneIndex2D, PartitionTreeIndex):
            index = cls([(0.0, 0.0)], block_size=8)
            assert index.query(constraint_hit) == [(0.0, 0.0)]
            assert index.query(constraint_miss) == []


class TestIOAccountingInvariants:
    def test_build_charges_at_least_output_writes(self):
        points = uniform_points(800, seed=5)
        index = HalfplaneIndex2D(points, block_size=32, seed=6)
        assert index.build_ios.writes >= math.ceil(800 / 32)

    def test_query_reads_bounded_by_space(self):
        points = uniform_points(900, seed=7)
        index = PartitionTreeIndex(points, block_size=32)
        constraint = LinearConstraint((0.0,), 10.0)     # everything
        result = index.query_with_stats(constraint)
        # Reporting everything can touch each block only a bounded number of
        # times (tree nodes + leaf blocks).
        assert result.ios.reads <= 2 * index.space_blocks

    def test_disk_array_random_access_costs_one_read(self):
        store = BlockStore(block_size=8, cache_blocks=0)
        array = DiskArray(store, list(range(64)))
        store.reset_stats()
        array[17]
        assert store.stats.reads == 1

    def test_btree_duplicate_keys_all_reported_in_range(self):
        store = BlockStore(block_size=8, cache_blocks=0)
        tree = BTree(store)
        tree.bulk_load([(5, i) for i in range(10)])
        assert len(tree.range_query(5, 5)) == 10


class TestBoxHelpers:
    def test_disjoint_from_halfspaces_certificate(self):
        box = Box((0.0, 0.0), (1.0, 1.0))
        outside = [Hyperplane((0.0,), -2.0)]      # y <= -2 excludes the box
        overlapping = [Hyperplane((0.0,), 0.5)]
        assert box.disjoint_from_halfspaces(outside)
        assert not box.disjoint_from_halfspaces(overlapping)

    def test_volume_and_corners_in_3d(self):
        box = Box((0.0, 0.0, 0.0), (1.0, 2.0, 3.0))
        assert box.volume() == pytest.approx(6.0)
        assert len(box.corners()) == 8
        assert box.widest_axis() == 2
