"""Integration tests: every index answers the same workload identically.

The structures of Sections 3–6 and all baselines implement the same query
semantics, so on any shared workload their answers must coincide exactly;
only their I/O and space profiles may differ.  These tests exercise that
end-to-end contract, including mixed block sizes, shared stores and the
public package API.
"""

import math

import numpy as np
import pytest

import repro
from repro import (
    BlockStore,
    HalfplaneIndex2D,
    HalfspaceIndex3D,
    HybridIndex3D,
    LinearConstraint,
    PartitionTreeIndex,
    ShallowPartitionTreeIndex,
)
from repro.baselines import FullScanIndex, KDBTreeIndex, QuadTreeIndex, RTreeIndex
from repro.workloads import (
    halfspace_queries_with_selectivity,
    uniform_points,
    uniform_points_ball,
)

from conftest import brute_force_halfspace


class TestCrossStructureAgreement2D:
    @pytest.fixture(scope="class")
    def workload(self):
        points = uniform_points(1600, seed=1)
        queries = halfspace_queries_with_selectivity(points, 3, 0.05, seed=2)
        queries += halfspace_queries_with_selectivity(points, 2, 0.3, seed=3)
        return points, queries

    @pytest.mark.parametrize("index_class", [
        HalfplaneIndex2D, PartitionTreeIndex, FullScanIndex, QuadTreeIndex,
        RTreeIndex, KDBTreeIndex,
    ])
    def test_all_structures_agree_with_ground_truth(self, index_class, workload):
        points, queries = workload
        index = index_class(points, block_size=32)
        for constraint in queries:
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in index.query(constraint)}


class TestCrossStructureAgreement3D:
    @pytest.fixture(scope="class")
    def workload(self):
        points = uniform_points_ball(900, dimension=3, seed=4)
        queries = halfspace_queries_with_selectivity(points, 2, 0.05, seed=5)
        queries += halfspace_queries_with_selectivity(points, 2, 0.25, seed=6)
        return points, queries

    @pytest.mark.parametrize("index_factory", [
        lambda pts: HalfspaceIndex3D(pts, block_size=32, seed=7),
        lambda pts: PartitionTreeIndex(pts, block_size=32),
        lambda pts: ShallowPartitionTreeIndex(pts, block_size=32),
        lambda pts: HybridIndex3D(pts, block_size=32, seed=8),
        lambda pts: RTreeIndex(pts, block_size=32),
    ])
    def test_all_structures_agree_with_ground_truth(self, index_factory, workload):
        points, queries = workload
        index = index_factory(points)
        for constraint in queries:
            assert brute_force_halfspace(points, constraint) == \
                {tuple(p) for p in index.query(constraint)}


class TestSharedStoreAndBlockSizes:
    def test_two_indexes_share_one_store(self):
        points = uniform_points(800, seed=9)
        store = BlockStore(block_size=32)
        first = HalfplaneIndex2D(points, store=store, seed=10)
        second = PartitionTreeIndex(points, store=store)
        assert first.space_blocks + second.space_blocks <= store.num_blocks
        constraint = halfspace_queries_with_selectivity(points, 1, 0.1, seed=11)[0]
        assert {tuple(p) for p in first.query(constraint)} == \
            {tuple(p) for p in second.query(constraint)}

    @pytest.mark.parametrize("block_size", [8, 32, 128])
    def test_block_size_changes_cost_not_answers(self, block_size):
        points = uniform_points(900, seed=12)
        index = HalfplaneIndex2D(points, block_size=block_size, seed=13)
        constraint = halfspace_queries_with_selectivity(points, 1, 0.2, seed=14)[0]
        assert brute_force_halfspace(points, constraint) == \
            {tuple(p) for p in index.query(constraint)}

    def test_larger_blocks_mean_fewer_ios(self):
        points = uniform_points(3000, seed=15)
        constraint = halfspace_queries_with_selectivity(points, 1, 0.3, seed=16)[0]
        small = HalfplaneIndex2D(points, block_size=16, seed=17)
        large = HalfplaneIndex2D(points, block_size=128, seed=17)
        cost_small = small.query_with_stats(constraint).total_ios
        cost_large = large.query_with_stats(constraint).total_ios
        assert cost_large < cost_small

    def test_validate_against_scan_helper(self):
        points = uniform_points(500, seed=18)
        index = HalfplaneIndex2D(points, block_size=32, seed=19)
        constraint = halfspace_queries_with_selectivity(points, 1, 0.15, seed=20)[0]
        assert index.validate_against_scan(constraint, [tuple(p) for p in points])


class TestPackageAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_quickstart_snippet_runs(self):
        points = np.random.default_rng(0).uniform(-1, 1, size=(500, 2))
        index = repro.HalfplaneIndex2D(points, block_size=64)
        query = repro.LinearConstraint(coeffs=(0.5,), offset=0.1)
        result = index.query_with_stats(query)
        assert result.count == sum(query.below(p) for p in points)
        assert result.total_ios > 0

    def test_from_inequality_round_trip_on_index(self):
        points = uniform_points(400, seed=21)
        index = HalfplaneIndex2D(points, block_size=32, seed=22)
        # "y - 0.3 x <= 0.2" in general-inequality form.
        constraint = LinearConstraint.from_inequality((-0.3, 1.0), 0.2)
        assert brute_force_halfspace(points, constraint) == \
            {tuple(p) for p in index.query(constraint)}

    def test_build_ios_recorded(self):
        points = uniform_points(600, seed=23)
        index = HalfplaneIndex2D(points, block_size=32, seed=24)
        assert index.build_ios is not None
        assert index.build_ios.writes > 0
