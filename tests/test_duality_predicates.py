"""Tests for the duality transform (Lemma 2.1) and the basic predicates."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.geometry import duality
from repro.geometry.predicates import (
    bounding_box,
    line_below_point,
    orientation,
    point_below_hyperplane,
    point_below_line,
    point_below_plane,
    point_in_triangle,
    triangle_area,
)
from repro.geometry.primitives import Hyperplane, Line2, Plane3

coord = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)


class TestDuality2D:
    def test_dual_of_point_is_expected_line(self):
        line = duality.dual_line_of_point((2.0, 3.0))
        assert line == Line2(slope=-2.0, intercept=3.0)

    def test_dual_of_line_is_expected_point(self):
        assert duality.dual_point_of_line(Line2(1.5, -2.0)) == (1.5, -2.0)

    def test_primal_point_roundtrip(self):
        point = (0.7, -1.3)
        assert duality.primal_point_of_dual_line(
            duality.dual_line_of_point(point)) == point

    @given(px=coord, py=coord, slope=coord, intercept=coord)
    @settings(max_examples=200, deadline=None)
    def test_lemma_2_1_in_the_plane(self, px, py, slope, intercept):
        """A point is above a line iff the dual line is above the dual point.

        Points within float-rounding distance of the line are excluded:
        the two sides evaluate the same residual in different operation
        orders, so exactly-at-the-margin examples can land on different
        sides of any fixed epsilon.
        """
        line = Line2(slope, intercept)
        assume(abs(py - line.y_at(px)) > 1e-6)
        point_above = py > line.y_at(px)
        dual_line = duality.dual_line_of_point((px, py))
        dual_point = duality.dual_point_of_line(line)
        dual_above = dual_line.y_at(dual_point[0]) > dual_point[1]
        assert point_above == dual_above


class TestDuality3D:
    def test_dual_of_point_is_expected_plane(self):
        plane = duality.dual_plane_of_point((1.0, 2.0, 3.0))
        assert plane == Plane3(a=-1.0, b=-2.0, c=3.0)

    def test_primal_roundtrip(self):
        point = (0.5, -0.25, 2.0)
        assert duality.primal_point_of_dual_plane(
            duality.dual_plane_of_point(point)) == point

    @given(px=coord, py=coord, pz=coord, a=coord, b=coord, c=coord)
    @settings(max_examples=200, deadline=None)
    def test_lemma_2_1_in_space(self, px, py, pz, a, b, c):
        # As in the planar test, near-incident points are excluded: the
        # primal and dual sides order the same residual computation
        # differently, so margin-straddling examples (e.g. a tiny
        # coefficient absorbed into c ~ epsilon) flip under rounding.
        plane = Plane3(a, b, c)
        assume(abs(pz - plane.z_at(px, py)) > 1e-6)
        point_below = pz < plane.z_at(px, py)
        dual_plane = duality.dual_plane_of_point((px, py, pz))
        qx, qy, qz = duality.dual_point_of_plane(plane)
        dual_below = dual_plane.z_at(qx, qy) < qz
        assert point_below == dual_below


class TestDualityGeneral:
    def test_matches_2d_specialisation(self):
        point = (1.0, 2.0)
        hyperplane = duality.dual_hyperplane_of_point(point)
        line = duality.dual_line_of_point(point)
        assert hyperplane.coeffs == (-1.0,)
        assert hyperplane.offset == 2.0
        assert hyperplane.as_line2() == line

    def test_dual_point_of_hyperplane(self):
        hyperplane = Hyperplane((1.0, 2.0, 3.0), 4.0)
        assert duality.dual_point_of_hyperplane(hyperplane) == (1.0, 2.0, 3.0, 4.0)

    def test_primal_point_roundtrip(self):
        point = (1.0, -2.0, 3.0, -4.0)
        assert duality.primal_point_of_dual_hyperplane(
            duality.dual_hyperplane_of_point(point)) == point

    @given(st.lists(coord, min_size=4, max_size=4),
           st.lists(coord, min_size=4, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_lemma_2_1_in_dimension_four(self, point, plane_coeffs):
        hyperplane = Hyperplane(tuple(plane_coeffs[:3]), plane_coeffs[3])
        below = point_below_hyperplane(point, hyperplane)
        dual_h = duality.dual_hyperplane_of_point(point)
        dual_p = duality.dual_point_of_hyperplane(hyperplane)
        # Lemma 2.1: the point is below the hyperplane iff the dual
        # hyperplane (of the point) passes below the dual point.
        dual_hyperplane_below = dual_h.height_at(dual_p) < dual_p[-1] - 1e-9
        assert below == dual_hyperplane_below


class TestPredicates:
    def test_orientation_signs(self):
        assert orientation((0, 0), (1, 0), (0, 1)) == 1
        assert orientation((0, 0), (0, 1), (1, 0)) == -1
        assert orientation((0, 0), (1, 1), (2, 2)) == 0

    def test_point_below_line_strictness(self):
        line = Line2(0.0, 0.0)
        assert point_below_line((0.0, -0.1), line)
        assert not point_below_line((0.0, 0.0), line)

    def test_line_below_point_is_dual_of_point_above_line(self):
        line = Line2(1.0, 0.0)
        assert line_below_point(line, (0.0, 1.0))
        assert not line_below_point(line, (0.0, -1.0))

    def test_point_below_plane(self):
        plane = Plane3(0.0, 0.0, 1.0)
        assert point_below_plane((0.0, 0.0, 0.5), plane)
        assert not point_below_plane((0.0, 0.0, 1.5), plane)

    def test_point_in_triangle_inside_outside_boundary(self):
        a, b, c = (0.0, 0.0), (2.0, 0.0), (0.0, 2.0)
        assert point_in_triangle((0.5, 0.5), a, b, c)
        assert point_in_triangle((1.0, 0.0), a, b, c)       # on an edge
        assert not point_in_triangle((2.0, 2.0), a, b, c)

    def test_triangle_area(self):
        assert triangle_area((0, 0), (2, 0), (0, 2)) == pytest.approx(2.0)

    def test_bounding_box(self):
        lower, upper = bounding_box([(0, 1), (2, -1), (1, 3)])
        assert lower == (0, -1)
        assert upper == (2, 3)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
