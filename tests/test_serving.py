"""Tests for the async serving subsystem: queue, admission, replicas.

Covers the :mod:`repro.engine.serving` package (token buckets, admission
policies, the prioritized deadline queue, the asyncio executor) plus the
replication layer it drives (least-loaded picking, per-replica metrics,
write-fanout consistency) and the concurrency regressions the async path
must not reintroduce (lost calibration updates).
"""

from __future__ import annotations

import threading

import pytest

from conftest import brute_force_halfspace

from repro import LinearConstraint, QueryEngine
from repro.engine import Catalog, Planner, ServingRequest, TenantBudget
from repro.engine.calibration import CalibrationStore
from repro.engine.serving.admission import (
    AdmissionController,
    TokenBucket,
)
from repro.engine.serving.queue import PriorityRequestQueue, QueuedRequest
from repro.engine.serving.replicas import LeastLoadedReplicaPicker
from repro.workloads import (
    halfspace_queries_with_selectivity,
    uniform_points,
)

BLOCK_SIZE = 32


@pytest.fixture(scope="module")
def points2d():
    return uniform_points(2048, seed=77)


def _request(constraint, tenant="t", dataset="d", priority=0,
             deadline_s=None):
    return ServingRequest(tenant=tenant, dataset=dataset,
                          constraint=constraint, priority=priority,
                          deadline_s=deadline_s)


# ----------------------------------------------------------------------
# token buckets
# ----------------------------------------------------------------------
def test_token_bucket_starts_full_and_refills_from_clock():
    bucket = TokenBucket(rate=10.0, burst=20.0)
    assert bucket.tokens == 20.0
    assert bucket.try_consume(15.0, now=0.0)
    assert not bucket.try_consume(10.0, now=0.0)     # only 5 left
    assert bucket.try_consume(10.0, now=0.5)         # +5 refilled
    assert bucket.tokens == pytest.approx(0.0)
    bucket.refill(now=10.0)
    assert bucket.tokens == 20.0                     # capped at burst

def test_token_bucket_seconds_until_and_settle():
    bucket = TokenBucket(rate=10.0, burst=20.0)
    assert bucket.try_consume(20.0, now=0.0)
    assert bucket.seconds_until(10.0, now=0.0) == pytest.approx(1.0)
    bucket.settle(estimated=20.0, observed=30.0)     # cost 10 more than predicted
    assert bucket.tokens == pytest.approx(-10.0)
    assert bucket.seconds_until(10.0, now=0.0) == pytest.approx(2.0)
    bucket.settle(estimated=0.0, observed=-0.0)
    assert bucket.tokens == pytest.approx(-10.0)


def test_token_bucket_oversized_request_admitted_from_full_bucket():
    # A request bigger than the whole bucket must not starve forever: it
    # is admitted once the bucket is full and drives the balance negative.
    bucket = TokenBucket(rate=10.0, burst=20.0)
    assert bucket.try_consume(50.0, now=0.0)
    assert bucket.tokens == pytest.approx(-30.0)
    assert not bucket.try_consume(50.0, now=0.0)
    assert bucket.seconds_until(50.0, now=0.0) == pytest.approx(5.0)


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.0)


# ----------------------------------------------------------------------
# admission controller
# ----------------------------------------------------------------------
def test_admission_unbudgeted_tenant_always_admitted():
    controller = AdmissionController()
    decision = controller.decide("anyone", 1e9, now=0.0)
    assert decision.action == "admit"
    assert controller.tokens("anyone") is None


def test_admission_policies_dispatch():
    controller = AdmissionController({
        "q": TenantBudget(ios_per_s=10.0, burst=10.0, policy="queue"),
        "r": TenantBudget(ios_per_s=10.0, burst=10.0, policy="reject"),
        "g": TenantBudget(ios_per_s=10.0, burst=10.0, policy="degrade"),
    })
    for tenant in "qrg":
        assert controller.decide(tenant, 10.0, now=0.0).action == "admit"
    queued = controller.decide("q", 5.0, now=0.0)
    assert queued.action == "queue"
    assert queued.retry_after_s == pytest.approx(0.5)
    assert controller.decide("r", 5.0, now=0.0).action == "reject"
    assert controller.decide("g", 5.0, now=0.0).action == "degrade"


def test_admission_settle_charges_observed_cost():
    controller = AdmissionController(
        {"t": TenantBudget(ios_per_s=10.0, burst=100.0)})
    assert controller.decide("t", 10.0, now=0.0).action == "admit"
    controller.settle("t", estimated_ios=10.0, observed_ios=60.0)
    assert controller.tokens("t") == pytest.approx(40.0)
    controller.settle("unbudgeted", 1.0, 100.0)      # no-op, no crash


def test_tenant_budget_validates_policy():
    with pytest.raises(ValueError):
        TenantBudget(ios_per_s=1.0, policy="drop")


# ----------------------------------------------------------------------
# priority queue
# ----------------------------------------------------------------------
def test_queue_orders_by_priority_deadline_then_arrival():
    constraint = LinearConstraint(coeffs=(0.0,), offset=0.0)
    queue = PriorityRequestQueue()
    items = [
        QueuedRequest(_request(constraint, priority=1), seq=0,
                      enqueued_at=0.0),
        QueuedRequest(_request(constraint, priority=0, deadline_s=9.0),
                      seq=1, enqueued_at=0.0),
        QueuedRequest(_request(constraint, priority=0, deadline_s=2.0),
                      seq=2, enqueued_at=0.0),
        QueuedRequest(_request(constraint, priority=0, deadline_s=2.0),
                      seq=3, enqueued_at=0.0),
    ]
    for item in items:
        queue.push(item)
    order = [queue.pop_ready(0.0).seq for __ in range(4)]
    assert order == [2, 3, 1, 0]
    assert queue.pop_ready(0.0) is None


def test_queue_parks_and_promotes_deferred_requests():
    constraint = LinearConstraint(coeffs=(0.0,), offset=0.0)
    queue = PriorityRequestQueue()
    parked = QueuedRequest(_request(constraint), seq=0, enqueued_at=0.0,
                           not_before=5.0)
    queue.push(parked)
    assert queue.pop_ready(1.0) is None
    assert queue.next_ready_delay(1.0) == pytest.approx(4.0)
    ready = QueuedRequest(_request(constraint), seq=1, enqueued_at=2.0)
    queue.push(ready)
    assert queue.next_ready_delay(2.0) == 0.0
    assert queue.pop_ready(2.0).seq == 1
    assert queue.pop_ready(6.0).seq == 0             # promoted after 5.0
    assert queue.next_ready_delay(7.0) is None       # empty


# ----------------------------------------------------------------------
# async executor end to end
# ----------------------------------------------------------------------
def test_serve_async_answers_match_brute_force(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraints = halfspace_queries_with_selectivity(points2d, 6, 0.05,
                                                     seed=11)
    requests = [_request(c, tenant="t%d" % (i % 3))
                for i, c in enumerate(constraints)]
    result = engine.serve_async(requests, max_concurrency=4)
    assert result.outcomes() == {"served": len(requests)}
    for constraint, item in zip(constraints, result.requests):
        assert item.answer is not None
        assert {tuple(p) for p in item.answer.points} == \
            brute_force_halfspace(points2d, constraint)
        assert item.turnaround_s >= item.queue_wait_s >= 0.0
    tenants = engine.summary()["tenants"]
    assert set(tenants) == {"t0", "t1", "t2"}
    assert sum(payload["queries"] for payload in tenants.values()) == 6


def test_serve_async_shares_result_cache_with_sync_path(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.03,
                                                    seed=13)[0]
    first = engine.query("d", constraint)            # sync fills the cache
    assert not first.from_result_cache
    result = engine.serve_async([_request(constraint, tenant="async")])
    answer = result.requests[0].answer
    assert answer.from_result_cache
    assert answer.total_ios == 0
    assert {tuple(p) for p in answer.points} == {
        tuple(p) for p in first.points}


def test_serve_async_expires_requests_past_deadline(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.05,
                                                    seed=17)[0]
    requests = [
        _request(constraint, tenant="live"),
        # A deadline strictly before submission can never be met.
        _request(constraint, tenant="dead", deadline_s=-1.0),
    ]
    result = engine.serve_async(requests)
    assert result.requests[0].outcome == "served"
    assert result.requests[1].outcome == "expired"
    assert result.requests[1].answer is None
    assert engine.summary()["admission"].get("expired") == 1


def test_serve_async_reject_policy_drops_over_budget(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraints = halfspace_queries_with_selectivity(points2d, 4, 0.2,
                                                     seed=19)
    requests = [_request(c, tenant="capped") for c in constraints]
    # The burst covers roughly one query; the trickle refill cannot clear
    # another before the run ends, so later requests are rejected.
    plan = engine.explain("d", constraints[0])
    budget = TenantBudget(ios_per_s=0.001, burst=plan.estimated_ios + 1.0,
                          policy="reject")
    result = engine.serve_async(requests, budgets={"capped": budget},
                                max_concurrency=1)
    outcomes = result.outcomes()
    assert outcomes.get("served", 0) >= 1
    assert outcomes.get("rejected", 0) >= 1
    admission = engine.summary()["admission"]
    assert admission["reject"] == outcomes["rejected"]


def test_serve_async_degrade_policy_serves_sample_subset(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraints = halfspace_queries_with_selectivity(points2d, 3, 0.3,
                                                     seed=23)
    requests = [_request(c, tenant="soft") for c in constraints]
    plan = engine.explain("d", constraints[0])
    budget = TenantBudget(ios_per_s=0.001, burst=plan.estimated_ios + 1.0,
                          policy="degrade")
    result = engine.serve_async(requests, budgets={"soft": budget},
                                max_concurrency=1)
    degraded = [item for item in result.requests
                if item.outcome == "degraded"]
    assert degraded
    for item, constraint in zip(result.requests, constraints):
        if item.outcome != "degraded":
            continue
        assert item.answer.degraded
        assert item.answer.total_ios == 0
        truth = brute_force_halfspace(points2d, constraint)
        assert {tuple(p) for p in item.answer.points} <= truth
    # Degraded answers must never be cached as exact results.
    exact = engine.query("d", degraded[0].request.constraint)
    assert not exact.from_result_cache


def test_serve_async_queue_policy_throttles_but_serves_all(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraints = halfspace_queries_with_selectivity(points2d, 4, 0.1,
                                                     seed=29)
    requests = [_request(c, tenant="throttled") for c in constraints]
    plan = engine.explain("d", constraints[0])
    # Enough rate that deferrals clear in milliseconds, small enough burst
    # that back-to-back requests must wait.
    budget = TenantBudget(ios_per_s=20_000.0,
                          burst=plan.estimated_ios + 1.0, policy="queue")
    result = engine.serve_async(requests, budgets={"throttled": budget},
                                max_concurrency=2)
    assert result.outcomes() == {"served": len(requests)}
    assert sum(item.deferrals for item in result.requests) > 0
    assert engine.summary()["admission"].get("queue", 0) > 0
    for constraint, item in zip(constraints, result.requests):
        assert {tuple(p) for p in item.answer.points} == \
            brute_force_halfspace(points2d, constraint)


def test_serve_async_coalesces_duplicate_in_flight_requests(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.1,
                                                    seed=47)[0]
    plan = engine.explain("d", constraint)
    requests = [_request(constraint, tenant="hot") for __ in range(6)]
    # The budget covers exactly one execution: only dedup (not six
    # admissions) can serve the whole wave.
    budget = TenantBudget(ios_per_s=0.001, burst=plan.estimated_ios + 1.0,
                          policy="reject")
    result = engine.serve_async(requests, budgets={"hot": budget},
                                max_concurrency=6)
    assert result.outcomes() == {"served": 6}
    executed = [item for item in result.requests
                if not item.answer.from_result_cache]
    assert len(executed) == 1                         # one leader paid I/O
    truth = brute_force_halfspace(points2d, constraint)
    for item in result.requests:
        assert {tuple(p) for p in item.answer.points} == truth
    assert engine.summary()["admission"]["admit"] == 1


def test_follower_whose_deadline_passed_during_leader_is_expired(points2d):
    # A deduped follower never re-enters the queue, so _complete itself
    # must enforce its deadline: a follower that the leader outlived is
    # dropped as "expired", not reported "served" late.
    from concurrent.futures import Future
    from repro.engine import ExecutionCore
    from repro.engine.executor import ExecutedQuery
    from repro.engine.serving.executor import AsyncExecutor, _RunState
    from repro.io.store import IOStats

    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.05,
                                                    seed=61)[0]
    executor = AsyncExecutor(engine.executor.core, clock=lambda: 100.0)
    leader = QueuedRequest(_request(constraint, tenant="a"), seq=0,
                           enqueued_at=0.0, dispatched_at=0.0)
    timely = QueuedRequest(_request(constraint, tenant="b",
                                    deadline_s=200.0), seq=1,
                           enqueued_at=0.0)
    doomed = QueuedRequest(_request(constraint, tenant="c",
                                    deadline_s=1.0), seq=2,
                           enqueued_at=0.0)
    key = ("d", (constraint.coeffs, constraint.offset))
    state = _RunState()
    state.followers[key] = [timely, doomed]
    future = Future()
    future.set_result(ExecutedQuery(dataset="d", index_name="halfplane2d",
                                    points=[(0.0, 0.0)], ios=IOStats(),
                                    latency_s=0.01, estimated_ios=3.0,
                                    tenant="a"))
    outcomes = dict(executor._complete(state, leader, future,
                                       PriorityRequestQueue()))
    assert outcomes[0].outcome == "served"
    assert outcomes[1].outcome == "served"           # deadline 200 > 100
    assert outcomes[1].answer.from_result_cache
    assert outcomes[1].answer.tenant == "b"
    assert outcomes[2].outcome == "expired"          # deadline 1 < 100
    assert outcomes[2].answer is None
    assert engine.summary()["admission"] == {"expired": 1}


def test_queue_policy_expiry_counts_once_and_never_parks(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraints = halfspace_queries_with_selectivity(points2d, 2, 0.1,
                                                     seed=53)
    plan = engine.explain("d", constraints[0])
    # Trickle refill: the second request's wait is far past its deadline,
    # so it must expire at admission — one recorded outcome, no deferral.
    # Priorities pin the admission order (a deadline would otherwise sort
    # the doomed request first and let it drain the bucket).
    budget = TenantBudget(ios_per_s=0.001, burst=plan.estimated_ios + 1.0,
                          policy="queue")
    requests = [_request(constraints[0], tenant="t", priority=0),
                _request(constraints[1], tenant="t", priority=1,
                         deadline_s=0.5)]
    result = engine.serve_async(requests, budgets={"t": budget},
                                max_concurrency=1)
    assert result.requests[0].outcome == "served"
    expired = result.requests[1]
    assert expired.outcome == "expired"
    assert expired.deferrals == 0
    admission = engine.summary()["admission"]
    assert admission == {"admit": 1, "expired": 1}    # no "queue" count


def test_deferred_request_replans_after_mutation(points2d):
    # A request parked by admission control must not execute the plan it
    # was costed with if the dataset mutated meanwhile: the fresh plan
    # routes to the dynamic index and sees the inserted point.
    import threading as _threading
    import time as _time
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d, kinds=["dynamic", "full_scan"])
    constraints = halfspace_queries_with_selectivity(points2d, 2, 0.2,
                                                     seed=59)
    drain, deferred = constraints
    inserted = (0.0, -2.0)
    assert deferred.below(inserted)
    e_drain = engine.explain("d", drain).estimated_ios
    e_deferred = engine.explain("d", deferred).estimated_ios
    # First request empties the bucket; the second defers for ~0.5s while
    # a background insert lands (at ~50ms) into the dynamic index.
    budget = TenantBudget(ios_per_s=2.0 * e_deferred,
                          burst=e_drain + 1.0, policy="queue")
    dynamic = engine.catalog.indexes("d")["dynamic"]

    def mutate():
        _time.sleep(0.05)
        dynamic.insert(inserted)

    mutator = _threading.Thread(target=mutate)
    mutator.start()
    try:
        result = engine.serve_async(
            [_request(drain, tenant="t"), _request(deferred, tenant="t")],
            budgets={"t": budget}, max_concurrency=1)
    finally:
        mutator.join()
    late = result.requests[1]
    assert late.outcome == "served"
    assert late.deferrals > 0
    assert late.answer.index_name == "dynamic"
    assert tuple(inserted) in {tuple(p) for p in late.answer.points}
    # And the result cache holds the fresh answer, not a stale one.
    again = engine.query("d", deferred)
    assert again.from_result_cache
    assert tuple(inserted) in {tuple(p) for p in again.points}


def test_serve_async_isolates_per_request_failures(points2d):
    # One bad request (wrong constraint dimension fails planning) must not
    # discard the rest of the wave's outcomes.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    good = halfspace_queries_with_selectivity(points2d, 2, 0.05, seed=67)
    bad = LinearConstraint(coeffs=(0.1, 0.2), offset=0.0)   # 3-D vs 2-D data
    result = engine.serve_async([_request(good[0]), _request(bad),
                                 _request(good[1])])
    assert result.outcomes() == {"served": 2, "failed": 1}
    failed = result.requests[1]
    assert failed.outcome == "failed" and failed.answer is None
    assert "dimension" in failed.error
    for index in (0, 2):
        item = result.requests[index]
        assert {tuple(p) for p in item.answer.points} == \
            brute_force_halfspace(points2d, item.request.constraint)


def test_serve_async_isolates_unknown_dataset_with_warm_cache(points2d):
    # An unknown dataset name must fail its own request at planning time,
    # not crash the whole run in the warm-cache pre-pass.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.05,
                                                    seed=71)[0]
    result = engine.serve_async(
        [_request(constraint, dataset="typo"),
         _request(constraint, dataset="d")],
        warm_cache=True)
    assert result.outcomes() == {"failed": 1, "served": 1}
    assert "unknown dataset" in result.requests[0].error
    assert {tuple(p) for p in result.requests[1].answer.points} == \
        brute_force_halfspace(points2d, constraint)


def test_serve_async_priorities_run_urgent_tenant_first(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d)
    constraints = halfspace_queries_with_selectivity(points2d, 8, 0.05,
                                                     seed=31)
    # Background tenant submits first but with a worse priority class.
    requests = [_request(c, tenant="background", priority=5)
                for c in constraints[:4]]
    requests += [_request(c, tenant="urgent", priority=0)
                 for c in constraints[4:]]
    result = engine.serve_async(requests, max_concurrency=1)
    dispatch_order = sorted(result.requests,
                            key=lambda item: item.queue_wait_s)
    first_tenants = [item.request.tenant for item in dispatch_order[:4]]
    assert first_tenants == ["urgent"] * 4


# ----------------------------------------------------------------------
# replicated shards
# ----------------------------------------------------------------------
def test_replicated_shard_registration_builds_per_replica(points2d):
    catalog = Catalog(block_size=BLOCK_SIZE, seed=3)
    sharded = catalog.register_sharded_dataset("sh", points2d, num_shards=2,
                                               replicas=2)
    assert sharded.replicas_per_shard == 2
    assert sharded.describe()["replicas_per_shard"] == 2
    records = catalog.build_suite("sh", kinds=["full_scan"])
    assert len(records) == 2 * 2                      # shards x replicas
    assert len(catalog.stores("sh")) == 4
    keys = set(catalog.indexes("sh"))
    assert keys == {"0/full_scan", "0@r1/full_scan",
                    "1/full_scan", "1@r1/full_scan"}
    assert set(catalog.build_records("sh")) == keys
    with pytest.raises(ValueError):
        catalog.register_sharded_dataset("bad", points2d, num_shards=2,
                                         replicas=0)


def test_replicated_answers_match_brute_force(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=2)
    constraints = halfspace_queries_with_selectivity(points2d, 5, 0.08,
                                                     seed=37)
    batch = engine.serve_batch("sh", constraints)
    for constraint, answer in zip(constraints, batch.queries):
        assert {tuple(p) for p in answer.points} == brute_force_halfspace(
            points2d, constraint)


def test_replica_picker_prefers_idle_then_balances():
    picker = LeastLoadedReplicaPicker()

    class FakeShard:
        shard_id = 0

        @staticmethod
        def replicas_for_query():
            return [0, 1]

    first = picker.acquire("d", FakeShard, 10.0)
    second = picker.acquire("d", FakeShard, 10.0)    # 0 busy -> picks 1
    assert {first, second} == {0, 1}
    assert picker.in_flight("d", 0, first) == 10.0
    picker.release("d", 0, first, 10.0)
    picker.release("d", 0, second, 10.0)
    assert picker.in_flight("d", 0, 0) == 0.0
    # Idle ties round-robin on cumulative load instead of hammering 0.
    third = picker.acquire("d", FakeShard, 5.0)
    fourth = picker.acquire("d", FakeShard, 5.0)
    assert {third, fourth} == {0, 1}
    assert picker.snapshot() == {"d/0/0": 5.0, "d/0/1": 5.0}


def test_replicated_serving_attributes_load_to_both_replicas(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=2)
    constraints = halfspace_queries_with_selectivity(points2d, 6, 0.05,
                                                     seed=41)
    requests = [_request(c, tenant="t%d" % (i % 2), dataset="sh")
                for i, c in enumerate(constraints)]
    result = engine.serve_async(requests, max_concurrency=4)
    assert result.outcomes() == {"served": len(requests)}
    load = engine.stats.replica_load
    for shard_id in (0, 1):
        replicas_used = {replica for (name, shard, replica), ios
                         in load.items()
                         if name == "sh" and shard == shard_id and ios > 0}
        assert replicas_used == {0, 1}, (
            "shard %d load should spread over both replicas" % shard_id)


# ----------------------------------------------------------------------
# mutations through a replicated shard (write-fanout regression)
# ----------------------------------------------------------------------
def test_engine_insert_fans_out_and_defeats_stale_box(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=2, kinds=["dynamic"])
    sharded = engine.catalog.sharded("sh")
    last_shard = sharded.shards[-1]
    outlier = (10.0, 0.0)                            # far outside [-1, 1]^2
    result = engine.insert("sh", outlier)
    # Routed by the shard attribute to the top range shard, applied to
    # *both* replicas, so reads stay free to use either copy.
    assert result.shard_id == last_shard.shard_id
    assert result.replicas == 2
    assert last_shard.box_stale
    assert last_shard.replicas_for_query() == [0, 1]
    for replica in last_shard.replicas:
        assert replica.indexes["dynamic"].size == last_shard.size + 1
    # Satisfied by the outlier alone: y <= 5x - 40.  The build-time box
    # would prune the shard; the stale flag must defeat that.
    constraint = LinearConstraint(coeffs=(5.0,), offset=-40.0)
    answer = engine.query("sh", constraint)
    assert tuple(outlier) in {tuple(p) for p in answer.points}
    # Repeated cold queries spread over both replicas: the least-loaded
    # picker's choices stay open after the mutation (no pinning).
    for __ in range(4):
        engine.query("sh", constraint, clear_cache=True)
    load = engine.stats.replica_load
    assert ("sh", last_shard.shard_id, 0) in load
    assert ("sh", last_shard.shard_id, 1) in load


def test_direct_mutation_of_a_replicated_shard_raises(points2d):
    # Writing one replica's index directly would silently desynchronise
    # the copies, so it must fail loudly (pre-mutation, nothing written);
    # the supported route is the engine-level fan-out.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=2, kinds=["dynamic"])
    indexes = engine.catalog.indexes("sh")
    with pytest.raises(ValueError, match="QueryEngine.insert"):
        indexes["0/dynamic"].insert((0.5, 0.5))
    with pytest.raises(ValueError, match="desynchronise"):
        indexes["0@r1/dynamic"].insert((0.5, 0.5))
    # The veto is pre-mutation: the rejected insert never landed, so the
    # replicas stay byte-identical to the build and unflagged.
    shard = engine.catalog.sharded("sh").shards[0]
    inside_all = LinearConstraint(coeffs=(0.0,), offset=1e9)
    for replica in shard.replicas:
        assert not replica.mutated
        assert (0.5, 0.5) not in {
            tuple(p) for p in replica.indexes["dynamic"].query(inside_all)}
    # The engine-level route is what works — and flags every replica of
    # whichever shard the point routes to.
    result = engine.insert("sh", (0.5, 0.5))
    routed = engine.catalog.sharded("sh").shards[result.shard_id]
    for replica in routed.replicas:
        assert replica.mutated
        assert (0.5, 0.5) in {
            tuple(p) for p in replica.indexes["dynamic"].query(inside_all)}


def test_fanout_rollback_when_one_replica_vetoes(points2d):
    # A replica that vetoes mid-fanout must roll back the copies already
    # written: afterwards every replica is byte-identical to before, and
    # the statistics/skew hooks never saw the failed logical mutation.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=3, kinds=["dynamic"])
    sharded = engine.catalog.sharded("sh")
    shard = sharded.shards[0]
    target = shard.replicas[0]          # the primary is applied *last*
    boom = RuntimeError("replica out of space")

    def veto():
        raise boom

    target.indexes["dynamic"].add_pre_mutation_listener(veto)
    probe = (float(shard.lows[0]), 0.0)  # routes to shard 0
    stats_before = (target.stats.observed_inserts, sharded.stats.size)
    mutations_before = engine.rebalancer.mutations("sh")
    # Prime the result cache so the rollback's invalidation is visible.
    everything = LinearConstraint(coeffs=(0.0,), offset=1e9)
    engine.query("sh", everything)
    assert engine.query("sh", everything).from_result_cache
    with pytest.raises(RuntimeError, match="replica out of space") as info:
        engine.insert("sh", probe)
    # The aborted attempt's real apply+rollback I/Os ride the exception
    # so async admission can charge them instead of refunding in full.
    assert getattr(info.value, "write_ios_observed", 0) > 0
    # Every replica (the secondaries were written before the veto) was
    # rolled back via the inverse op: identical sizes, no probe point.
    inside_all = LinearConstraint(coeffs=(0.0,), offset=1e9)
    for replica in shard.replicas:
        assert replica.indexes["dynamic"].size == shard.size
        assert probe not in {
            tuple(p) for p in replica.indexes["dynamic"].query(inside_all)}
    # The one-per-logical-mutation hooks never fired for the failed write.
    assert (target.stats.observed_inserts, sharded.stats.size) == stats_before
    assert engine.rebalancer.mutations("sh") == mutations_before
    # The rollback restored the secondaries' mutated flags and flushed
    # the result cache (a concurrent read may have cached a mid-fanout
    # secondary's answer).
    for replica in shard.replicas:
        assert not replica.mutated
    assert not engine.query("sh", everything).from_result_cache
    # The shard still accepts writes afterwards (lock released, no pin).
    target.indexes["dynamic"]._pre_mutation_listeners.remove(veto)
    result = engine.insert("sh", probe)
    assert result.applied and result.replicas == 3


def test_stale_answer_is_not_cached_past_concurrent_invalidation(points2d):
    # An answer computed before an invalidation must not be written back
    # into the result cache after it: the put is generation-guarded.
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_dataset("d", points2d, kinds=["full_scan"])
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.1,
                                                    seed=73)[0]
    index = engine.catalog.dataset("d").indexes["full_scan"]
    original_query = index.query

    def racing_query(c):
        points = original_query(c)
        # The invalidation lands after the answer was computed but before
        # the executor caches it — the async interleaving this guards.
        engine.executor.core.invalidate_dataset("d")
        return points

    index.query = racing_query
    try:
        engine.query("d", constraint)
    finally:
        index.query = original_query
    after = engine.query("d", constraint)
    assert not after.from_result_cache        # stale put was dropped
    assert engine.query("d", constraint).from_result_cache  # fresh one lands


def test_delete_of_absent_point_is_noop_even_on_a_replicated_shard(points2d):
    # The pre-mutation veto must not fire for a delete that would write
    # nothing: the documented contract is "returns False if not present".
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=2, kinds=["dynamic"])
    indexes = engine.catalog.indexes("sh")
    assert indexes["0/dynamic"].delete((123.0, 456.0)) is False
    with pytest.raises(ValueError):                  # a real write still vetoed
        indexes["0/dynamic"].insert((0.5, 0.5))
    # The engine-level route reports the no-op without raising too.
    result = engine.delete("sh", (123.0, 456.0))
    assert result.applied is False


def test_async_serving_after_engine_insert_stays_fresh(points2d):
    engine = QueryEngine(block_size=BLOCK_SIZE, seed=5)
    engine.register_sharded_dataset("sh", points2d, num_shards=2,
                                    replicas=2, kinds=["dynamic"])
    constraint = halfspace_queries_with_selectivity(points2d, 1, 0.9,
                                                    seed=43)[0]
    before = engine.serve_async([_request(constraint, dataset="sh")])
    count_before = before.requests[0].answer.count
    inside = (0.0, -2.0)
    assert constraint.below(inside)
    engine.insert("sh", inside)
    after = engine.serve_async([_request(constraint, dataset="sh")])
    answer = after.requests[0].answer
    assert not answer.from_result_cache              # cache invalidated
    assert tuple(inside) in {tuple(p) for p in answer.points}
    assert answer.count == count_before + 1


# ----------------------------------------------------------------------
# calibration: race regression + age-out boundary (satellites)
# ----------------------------------------------------------------------
def test_concurrent_observe_never_loses_updates(points2d):
    catalog = Catalog(block_size=BLOCK_SIZE, seed=3)
    catalog.register_dataset("d", points2d)
    catalog.build_suite("d", kinds=["full_scan"])
    planner = Planner(catalog, ewma_alpha=0.25)
    num_threads, per_thread = 8, 200
    barrier = threading.Barrier(num_threads)

    def hammer(seed):
        barrier.wait()
        for i in range(per_thread):
            planner.observe("d", "full_scan", 10.0, 10 + (seed + i) % 5)

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    state = planner.export_calibration()["d/full_scan"]
    # Every observation must be counted: a lost read-modify-write would
    # show up as a short count here.
    assert state["observations"] == num_threads * per_thread
    assert 0.05 <= state["factor"] <= 20.0


def test_observe_many_matches_sequential_observes(points2d):
    catalog = Catalog(block_size=BLOCK_SIZE, seed=3)
    catalog.register_dataset("d", points2d)
    catalog.build_suite("d", kinds=["full_scan", "partition_tree"])
    sequential = Planner(catalog, ewma_alpha=0.5)
    batched = Planner(catalog, ewma_alpha=0.5)
    samples = [("full_scan", 10.0, 12), ("partition_tree", 20.0, 15),
               ("full_scan", 10.0, 30)]
    for index_name, model, observed in samples:
        sequential.observe("d", index_name, model, observed)
    batched.observe_many("d", samples)
    assert batched.export_calibration().keys() == \
        sequential.export_calibration().keys()
    for key, entry in sequential.export_calibration().items():
        assert batched.export_calibration()[key]["factor"] == \
            pytest.approx(entry["factor"])


def test_calibration_age_out_keeps_entry_exactly_at_max_age(tmp_path):
    # The boundary case: an entry whose age equals max_age_s to the tick
    # is still fresh (strictly-older-than ages out), one tick past is not.
    path = str(tmp_path / "calibration.json")
    store = CalibrationStore(path, max_age_s=3600.0)
    store.save({
        "d/boundary": {"factor": 2.0, "observations": 3,
                       "updated_at": 6_400.0},
        "d/one_past": {"factor": 3.0, "observations": 3,
                       "updated_at": 6_399.999},
    })
    state = store.load(now=10_000.0)                  # ages: 3600.0, 3600.001
    assert set(state) == {"d/boundary"}
    assert state["d/boundary"]["factor"] == 2.0
