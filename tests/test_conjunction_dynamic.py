"""Tests for constraint conjunctions (polytope queries) and the dynamic tree."""

import numpy as np
import pytest

from repro import (
    ConstraintConjunction,
    DynamicPartitionTreeIndex,
    HalfplaneIndex2D,
    LinearConstraint,
    PartitionTreeIndex,
    query_conjunction,
    query_conjunction_with_stats,
)
from repro.baselines import FullScanIndex
from repro.workloads import halfspace_queries_with_selectivity, uniform_points

from conftest import brute_force_halfspace


class TestConstraintConjunction:
    def build_conjunction(self):
        # A wedge: y <= 0.8 x + 0.5  AND  y <= -0.6 x + 0.4  AND  x >= -0.5.
        return ConstraintConjunction.of(
            LinearConstraint((0.8,), 0.5),
            LinearConstraint((-0.6,), 0.4),
        ).and_halfspace((-1.0, 0.0), 0.5)

    def test_requires_at_least_one_constraint(self):
        with pytest.raises(ValueError):
            ConstraintConjunction.of()

    def test_requires_matching_dimensions(self):
        with pytest.raises(ValueError):
            ConstraintConjunction.of(LinearConstraint((1.0,), 0.0),
                                     LinearConstraint((1.0, 2.0), 0.0))

    def test_satisfied_by_matches_manual_evaluation(self):
        conjunction = self.build_conjunction()
        assert conjunction.satisfied_by((0.0, 0.0))
        assert not conjunction.satisfied_by((0.0, 0.45))    # violates 2nd constraint
        assert not conjunction.satisfied_by((-0.8, -0.5))   # violates x >= -0.5

    def test_polytope_agrees_with_satisfied_by(self):
        conjunction = self.build_conjunction()
        polytope = conjunction.to_polytope()
        rng = np.random.default_rng(1)
        for point in rng.uniform(-1, 1, size=(200, 2)):
            assert polytope.contains(point) == conjunction.satisfied_by(point)

    def test_query_on_partition_tree_matches_filter(self):
        points = uniform_points(1500, seed=2)
        tree = PartitionTreeIndex(points, block_size=32)
        conjunction = self.build_conjunction()
        expected = {tuple(p) for p in points if conjunction.satisfied_by(p)}
        assert {tuple(p) for p in query_conjunction(tree, conjunction)} == expected

    def test_query_on_non_tree_index_matches_filter(self):
        points = uniform_points(1200, seed=3)
        index = HalfplaneIndex2D(points, block_size=32, seed=4)
        conjunction = self.build_conjunction()
        expected = {tuple(p) for p in points if conjunction.satisfied_by(p)}
        assert {tuple(p) for p in query_conjunction(index, conjunction)} == expected

    def test_query_with_stats_counts_ios(self):
        points = uniform_points(1000, seed=5)
        tree = PartitionTreeIndex(points, block_size=32)
        result = query_conjunction_with_stats(tree, self.build_conjunction())
        assert result.total_ios > 0
        assert result.count == len([p for p in points
                                    if self.build_conjunction().satisfied_by(p)])

    def test_dimension_mismatch_rejected(self):
        points = uniform_points(200, dimension=3, seed=6)
        tree = PartitionTreeIndex(points, block_size=32)
        with pytest.raises(ValueError):
            query_conjunction(tree, self.build_conjunction())

    def test_filter_reference_helper(self):
        conjunction = self.build_conjunction()
        points = [(0.0, 0.0), (0.0, 0.45)]
        assert conjunction.filter(points) == [(0.0, 0.0)]


class TestDynamicPartitionTree:
    def test_requires_dimension_when_empty(self):
        with pytest.raises(ValueError):
            DynamicPartitionTreeIndex([], block_size=32)

    def test_insert_then_query(self):
        index = DynamicPartitionTreeIndex([], dimension=2, block_size=32)
        rng = np.random.default_rng(7)
        points = rng.uniform(-1, 1, size=(300, 2))
        for point in points:
            index.insert(point)
        assert index.size == 300
        constraint = LinearConstraint((0.3,), 0.1)
        expected = brute_force_halfspace(points, constraint)
        assert {tuple(p) for p in index.query(constraint)} == expected

    def test_bulk_build_then_incremental_updates(self):
        rng = np.random.default_rng(8)
        initial = rng.uniform(-1, 1, size=(800, 2))
        index = DynamicPartitionTreeIndex(initial, block_size=32)
        extra = rng.uniform(-1, 1, size=(200, 2))
        for point in extra:
            index.insert(point)
        removed = [tuple(p) for p in initial[:100]]
        for point in removed:
            assert index.delete(point)
        live = [tuple(p) for p in initial[100:]] + [tuple(p) for p in extra]
        constraint = LinearConstraint((-0.4,), 0.2)
        expected = {p for p in live if constraint.below(p)}
        assert {tuple(p) for p in index.query(constraint)} == expected
        assert index.size == len(live)

    def test_delete_missing_point_returns_false(self):
        index = DynamicPartitionTreeIndex(uniform_points(50, seed=9), block_size=32)
        assert not index.delete((123.0, 456.0))

    def test_rebuild_happens_after_many_inserts(self):
        index = DynamicPartitionTreeIndex(uniform_points(200, seed=10),
                                          block_size=32, buffer_fraction=0.1)
        rng = np.random.default_rng(11)
        for point in rng.uniform(-1, 1, size=(100, 2)):
            index.insert(point)
        assert index.rebuilds >= 1
        assert index.buffered <= 0.1 * index.size + 1

    def test_rebuild_happens_after_many_deletes(self):
        points = uniform_points(300, seed=12)
        index = DynamicPartitionTreeIndex(points, block_size=32)
        for point in points[:200]:
            index.delete(tuple(point))
        assert index.rebuilds >= 1
        assert index.size == 100

    def test_insert_dimension_checked(self):
        index = DynamicPartitionTreeIndex(uniform_points(20, seed=13), block_size=32)
        with pytest.raises(ValueError):
            index.insert((1.0, 2.0, 3.0))

    def test_reinserting_deleted_point_resurrects_it(self):
        points = uniform_points(100, seed=14)
        index = DynamicPartitionTreeIndex(points, block_size=32)
        victim = tuple(points[0])
        index.delete(victim)
        index.insert(victim)
        constraint = LinearConstraint((0.0,), 2.0)   # everything
        assert victim in {tuple(p) for p in index.query(constraint)}

    def test_agrees_with_static_tree_after_updates(self):
        rng = np.random.default_rng(15)
        base = rng.uniform(-1, 1, size=(500, 2))
        index = DynamicPartitionTreeIndex(base, block_size=32)
        additions = rng.uniform(-1, 1, size=(120, 2))
        for point in additions:
            index.insert(point)
        for point in base[:60]:
            index.delete(tuple(point))
        live = np.vstack([base[60:], additions])
        static = PartitionTreeIndex(live, block_size=32)
        for constraint in halfspace_queries_with_selectivity(live, 4, 0.2, seed=16):
            assert {tuple(p) for p in index.query(constraint)} == \
                {tuple(p) for p in static.query(constraint)}
