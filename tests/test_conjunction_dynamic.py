"""Tests for constraint conjunctions (polytope queries) and the dynamic tree."""

import numpy as np
import pytest

from repro import (
    ConstraintConjunction,
    DynamicPartitionTreeIndex,
    HalfplaneIndex2D,
    LinearConstraint,
    PartitionTreeIndex,
    query_conjunction,
    query_conjunction_with_stats,
)
from repro.baselines import FullScanIndex
from repro.workloads import halfspace_queries_with_selectivity, uniform_points

from conftest import brute_force_halfspace


class TestConstraintConjunction:
    def build_conjunction(self):
        # A wedge: y <= 0.8 x + 0.5  AND  y <= -0.6 x + 0.4  AND  x >= -0.5.
        return ConstraintConjunction.of(
            LinearConstraint((0.8,), 0.5),
            LinearConstraint((-0.6,), 0.4),
        ).and_halfspace((-1.0, 0.0), 0.5)

    def test_requires_at_least_one_constraint(self):
        with pytest.raises(ValueError):
            ConstraintConjunction.of()

    def test_requires_matching_dimensions(self):
        with pytest.raises(ValueError):
            ConstraintConjunction.of(LinearConstraint((1.0,), 0.0),
                                     LinearConstraint((1.0, 2.0), 0.0))

    def test_satisfied_by_matches_manual_evaluation(self):
        conjunction = self.build_conjunction()
        assert conjunction.satisfied_by((0.0, 0.0))
        assert not conjunction.satisfied_by((0.0, 0.45))    # violates 2nd constraint
        assert not conjunction.satisfied_by((-0.8, -0.5))   # violates x >= -0.5

    def test_polytope_agrees_with_satisfied_by(self):
        conjunction = self.build_conjunction()
        polytope = conjunction.to_polytope()
        rng = np.random.default_rng(1)
        for point in rng.uniform(-1, 1, size=(200, 2)):
            assert polytope.contains(point) == conjunction.satisfied_by(point)

    def test_query_on_partition_tree_matches_filter(self):
        points = uniform_points(1500, seed=2)
        tree = PartitionTreeIndex(points, block_size=32)
        conjunction = self.build_conjunction()
        expected = {tuple(p) for p in points if conjunction.satisfied_by(p)}
        assert {tuple(p) for p in query_conjunction(tree, conjunction)} == expected

    def test_query_on_non_tree_index_matches_filter(self):
        points = uniform_points(1200, seed=3)
        index = HalfplaneIndex2D(points, block_size=32, seed=4)
        conjunction = self.build_conjunction()
        expected = {tuple(p) for p in points if conjunction.satisfied_by(p)}
        assert {tuple(p) for p in query_conjunction(index, conjunction)} == expected

    def test_query_with_stats_counts_ios(self):
        points = uniform_points(1000, seed=5)
        tree = PartitionTreeIndex(points, block_size=32)
        result = query_conjunction_with_stats(tree, self.build_conjunction())
        assert result.total_ios > 0
        assert result.count == len([p for p in points
                                    if self.build_conjunction().satisfied_by(p)])

    def test_dimension_mismatch_rejected(self):
        points = uniform_points(200, dimension=3, seed=6)
        tree = PartitionTreeIndex(points, block_size=32)
        with pytest.raises(ValueError):
            query_conjunction(tree, self.build_conjunction())

    def test_filter_reference_helper(self):
        conjunction = self.build_conjunction()
        points = [(0.0, 0.0), (0.0, 0.45)]
        assert conjunction.filter(points) == [(0.0, 0.0)]


class TestDynamicPartitionTree:
    def test_requires_dimension_when_empty(self):
        with pytest.raises(ValueError):
            DynamicPartitionTreeIndex([], block_size=32)

    def test_insert_then_query(self):
        index = DynamicPartitionTreeIndex([], dimension=2, block_size=32)
        rng = np.random.default_rng(7)
        points = rng.uniform(-1, 1, size=(300, 2))
        for point in points:
            index.insert(point)
        assert index.size == 300
        constraint = LinearConstraint((0.3,), 0.1)
        expected = brute_force_halfspace(points, constraint)
        assert {tuple(p) for p in index.query(constraint)} == expected

    def test_bulk_build_then_incremental_updates(self):
        rng = np.random.default_rng(8)
        initial = rng.uniform(-1, 1, size=(800, 2))
        index = DynamicPartitionTreeIndex(initial, block_size=32)
        extra = rng.uniform(-1, 1, size=(200, 2))
        for point in extra:
            index.insert(point)
        removed = [tuple(p) for p in initial[:100]]
        for point in removed:
            assert index.delete(point)
        live = [tuple(p) for p in initial[100:]] + [tuple(p) for p in extra]
        constraint = LinearConstraint((-0.4,), 0.2)
        expected = {p for p in live if constraint.below(p)}
        assert {tuple(p) for p in index.query(constraint)} == expected
        assert index.size == len(live)

    def test_delete_missing_point_returns_false(self):
        index = DynamicPartitionTreeIndex(uniform_points(50, seed=9), block_size=32)
        assert not index.delete((123.0, 456.0))

    def test_rebuild_happens_after_many_inserts(self):
        index = DynamicPartitionTreeIndex(uniform_points(200, seed=10),
                                          block_size=32, buffer_fraction=0.1)
        rng = np.random.default_rng(11)
        for point in rng.uniform(-1, 1, size=(100, 2)):
            index.insert(point)
        assert index.rebuilds >= 1
        assert index.buffered <= 0.1 * index.size + 1

    def test_rebuild_happens_after_many_deletes(self):
        points = uniform_points(300, seed=12)
        index = DynamicPartitionTreeIndex(points, block_size=32)
        for point in points[:200]:
            index.delete(tuple(point))
        assert index.rebuilds >= 1
        assert index.size == 100

    def test_insert_dimension_checked(self):
        index = DynamicPartitionTreeIndex(uniform_points(20, seed=13), block_size=32)
        with pytest.raises(ValueError):
            index.insert((1.0, 2.0, 3.0))

    def test_reinserting_deleted_point_resurrects_it(self):
        points = uniform_points(100, seed=14)
        index = DynamicPartitionTreeIndex(points, block_size=32)
        victim = tuple(points[0])
        index.delete(victim)
        index.insert(victim)
        constraint = LinearConstraint((0.0,), 2.0)   # everything
        assert victim in {tuple(p) for p in index.query(constraint)}

    def test_duplicate_points_have_multiset_semantics(self):
        # Regression: tombstones used to be a *set*, so one delete of a
        # duplicated point hid every tree copy from query()/live_points()
        # while size decremented by only 1 — the three disagreed.
        base = uniform_points(40, seed=21)
        dup = tuple(base[0])
        index = DynamicPartitionTreeIndex(np.vstack([base, [dup]]),
                                          block_size=32)
        everything = LinearConstraint((0.0,), 1e9)

        def copies():
            reported = [tuple(p) for p in index.query(everything)]
            live = [tuple(p) for p in index.live_points()]
            assert len(reported) == len(live) == index.size
            assert reported.count(dup) == live.count(dup)
            return reported.count(dup)

        assert index.size == 41 and copies() == 2
        assert index.delete(dup)                 # hides exactly ONE copy
        assert index.size == 40 and copies() == 1
        assert index.delete(dup)
        assert index.size == 39 and copies() == 0
        assert index.delete(dup) is False        # multiset exhausted
        index.insert(dup)
        index.insert(dup)                        # resurrect + fresh copy
        assert index.size == 41 and copies() == 2
        index._rebuild()                         # rebuild keeps the count
        assert index.size == 41 and copies() == 2

    def test_resurrecting_insert_rewrites_tombstone_blocks(self):
        # Regression: the resurrect path dropped the tombstone from the
        # in-memory set but left the record in the on-disk tombstone
        # array, so disk state disagreed with the set and the array's
        # space never came back.
        points = uniform_points(60, seed=22)
        index = DynamicPartitionTreeIndex(points, block_size=32)
        victims = [tuple(p) for p in points[:3]]
        for victim in victims:
            assert index.delete(victim)
        assert len(index._tombstone_array) == 3 == index.tombstoned
        index.insert(victims[0])                 # resurrects a tree copy
        assert index.tombstoned == 2
        assert len(index._tombstone_array) == 2  # disk matches the set
        assert sorted(index._tombstone_array.read_all()) == \
            sorted(victims[1:])
        index.insert(victims[1])
        index.insert(victims[2])
        assert index.tombstoned == 0
        assert len(index._tombstone_array) == 0
        assert index._tombstone_array.num_blocks == 0   # space released

    def test_buffer_path_delete_checks_rebuild_threshold(self):
        # Regression: a delete served from the insertion buffer skipped
        # _maybe_rebuild(), so only tree-path deletes could trigger the
        # tombstone-fraction rebuild — the two paths must stay aligned.
        class Counting(DynamicPartitionTreeIndex):
            def __init__(self, *args, **kwargs):
                self.rebuild_checks = 0
                super().__init__(*args, **kwargs)

            def _maybe_rebuild(self):
                self.rebuild_checks += 1
                super()._maybe_rebuild()

        index = Counting(uniform_points(64, seed=23), block_size=32,
                         buffer_fraction=1.0)
        index.insert((5.0, 5.0))                 # lands in the buffer
        checks = index.rebuild_checks
        assert index.delete((5.0, 5.0))          # buffer-path delete
        assert index.rebuild_checks == checks + 1
        # Public invariant across a delete-heavy mix: the tombstone
        # fraction can never sit past the rebuild threshold.
        points = uniform_points(80, seed=24)
        index = DynamicPartitionTreeIndex(points, block_size=32)
        for point in points[:60]:
            index.delete(tuple(point))
            tree_size = index.size - index.buffered + index.tombstoned
            assert index.tombstoned * 2 <= max(1, tree_size)

    def test_agrees_with_static_tree_after_updates(self):
        rng = np.random.default_rng(15)
        base = rng.uniform(-1, 1, size=(500, 2))
        index = DynamicPartitionTreeIndex(base, block_size=32)
        additions = rng.uniform(-1, 1, size=(120, 2))
        for point in additions:
            index.insert(point)
        for point in base[:60]:
            index.delete(tuple(point))
        live = np.vstack([base[60:], additions])
        static = PartitionTreeIndex(live, block_size=32)
        for constraint in halfspace_queries_with_selectivity(live, 4, 0.2, seed=16):
            assert {tuple(p) for p in index.query(constraint)} == \
                {tuple(p) for p in static.query(constraint)}
