"""The query engine serving constraint queries over mixed tenants.

Constraint query languages (one of the paper's motivations, Section 1) ask
for all tuples satisfying linear constraints.  The paper supplies several
structures with different space/query trade-offs; ``repro.engine`` fronts
them with a serving layer: a catalog builds a suite of indexes per
dataset, a cost-based planner routes each query to the cheapest structure
using the paper's bounds (calibrated by observed I/Os), and a batch
executor adds dedup, a result cache and warm buffer pools.

The scenario: two tenants share the engine —

* ``servers``: a 3-D fact table (cpu_load, memory_load, latency_ms),
  **range-sharded on cpu_load across 2 file-backed shards with 2 replicas
  each** — queries fan out to the relevant shards only, concurrent
  queries on one shard overlap across its replicas, and the blocks live
  in real files;
* ``stocks``: a 2-D table (volatility, expected_return) on the default
  in-memory store.

The engine serves a mixed trace of hot and fresh constraints against
both, ingests **live mutations through the engine-level write path**
(``engine.insert`` routes each new server by cpu_load to its shard and
applies it to *both* replicas, so reads keep spreading after writes),
then switches to the **async serving path**: two logical tenants — an
interactive dashboard and a budget-capped batch reporter — share the
replicated ``servers`` dataset, and admission control keeps the
reporter's heavy queries from inflating the dashboard's latency.
Finally the same engine goes **on the network**: ``engine.serve_http``
binds the asyncio front-end, each tenant presents its own API key, the
reporter's budget now travels with its key, and an SSE stream delivers
a degraded estimate (with a confidence interval) before the exact
answer.  Run with::

    python examples/constraint_engine.py
"""

from __future__ import annotations

import numpy as np

from repro import ConstraintConjunction, LinearConstraint, QueryEngine
from repro.engine import ServingRequest, TenantBudget
from repro.workloads import (
    halfspace_queries_with_selectivity,
    mixed_tenant_workload,
)


def main() -> None:
    block_size = 64
    rng = np.random.default_rng(2)
    servers = np.column_stack([
        rng.beta(2, 3, 6_000),          # cpu_load in [0, 1]
        rng.beta(2, 4, 6_000),          # memory_load in [0, 1]
        rng.gamma(2.0, 0.1, 6_000),     # latency (normalised)
    ])
    stocks = np.column_stack([
        rng.beta(2, 5, 4_000),          # volatility
        rng.normal(0.05, 0.3, 4_000),   # expected return
    ])

    print("Registering tenants and bulk-building their index suites ...")
    engine = QueryEngine(block_size=block_size, seed=9)
    # servers: 2 range shards on cpu_load x 2 replicas, every replica in
    # its own real file (temp files; engine.close() removes them).
    for record in engine.register_sharded_dataset(
            "servers", servers, num_shards=2, replicas=2, sharding="range",
            backend="file",
            kinds=["halfspace3d", "partition_tree", "full_scan", "dynamic"]):
        print("  %-22s %5d blocks  built in %.2fs"
              % ("%s/%s" % (record.dataset, record.kind),
                 record.space_blocks, record.build_seconds))
    for record in engine.register_dataset("stocks", stocks):
        print("  %-22s %5d blocks  built in %.2fs"
              % ("stocks/%s" % record.kind, record.space_blocks,
                 record.build_seconds))

    # --- one query, explained ----------------------------------------------
    constraint = LinearConstraint(coeffs=(-0.2, -0.1), offset=0.4)
    print("\nSingle constraint: latency <= 0.4 - 0.2*cpu - 0.1*mem")
    print(engine.explain("servers", constraint).explain())
    answer = engine.query("servers", constraint)
    expected = {tuple(p) for p in servers if constraint.below(p)}
    assert {tuple(p) for p in answer.points} == expected
    print("  -> served by %s across %d shard(s) (%d pruned): "
          "%d servers in %d I/Os"
          % (answer.index_name, answer.shards_queried, answer.shards_pruned,
             answer.count, answer.total_ios))

    # --- a shard-pruned query ----------------------------------------------
    # Selective in the leading attribute (cpu_load): only low-cpu shards
    # can contain answers, so the planner skips the rest outright.
    pruned_constraint = LinearConstraint(coeffs=(-8.0, 0.0), offset=0.6)
    pruned_answer = engine.query("servers", pruned_constraint)
    assert {tuple(p) for p in pruned_answer.points} == {
        tuple(p) for p in servers if pruned_constraint.below(p)}
    print("\nSteep constraint: latency <= 0.6 - 8*cpu (low-cpu servers only)")
    print("  -> %d/%d shards pruned: %d servers in %d I/Os"
          % (pruned_answer.shards_pruned,
             pruned_answer.shards_pruned + pruned_answer.shards_queried,
             pruned_answer.count, pruned_answer.total_ios))

    # --- a conjunction (convex polytope) -----------------------------------
    conjunction = ConstraintConjunction.of(
        LinearConstraint(coeffs=(0.0, 0.0), offset=0.12),     # latency <= 0.12
    ).and_halfspace((1.0, 1.0, 0.0), 0.55)                    # cpu + mem <= 0.55
    polytope_answer = engine.query_conjunction("servers", conjunction)
    assert sorted(tuple(p) for p in polytope_answer.points) == sorted(
        tuple(p) for p in servers if conjunction.satisfied_by(p))
    print("\nConjunction: latency <= 0.12 AND cpu+mem <= 0.55")
    print("  -> served by %s: %d servers in %d I/Os"
          % (polytope_answer.index_name, polytope_answer.count,
             polytope_answer.total_ios))

    # --- a mixed-tenant serving trace --------------------------------------
    requests = mixed_tenant_workload(
        {"servers": servers, "stocks": stocks}, num_requests=60,
        hot_fraction=0.4, seed=17)
    print("\nServing %d mixed requests (40%% hot repeats, threaded) ..."
          % len(requests))
    result = engine.serve_workload(requests, warm_cache=True,
                                   use_threads=True)
    for (tenant, constraint), answer in zip(requests, result.queries):
        assert {tuple(p) for p in answer.points} == {
            tuple(p) for p in
            {"servers": servers, "stocks": stocks}[tenant]
            if constraint.below(p)}
    print("  %d I/Os total, %d result-cache hits, %.1f ms wall clock"
          % (result.total_ios, result.result_cache_hits,
             result.wall_seconds * 1e3))

    # --- async serving: a budget-capped tenant shares the replicated shard -
    # Two logical tenants hit the *same* replicated dataset: "dashboard"
    # issues selective interactive queries, "batch_report" issues
    # reporting-heavy ones.  The reporter is capped to a token-bucket I/O
    # budget (queue policy): its requests defer while the dashboard's
    # flow, so the slow tenant cannot head-of-line-block the fast one.
    dashboard_queries = halfspace_queries_with_selectivity(
        servers, 6, 0.01, seed=23)
    report_queries = halfspace_queries_with_selectivity(
        servers, 6, 0.8, seed=29)
    async_requests = [
        ServingRequest(tenant="batch_report", dataset="servers",
                       constraint=constraint, priority=5)
        for constraint in report_queries
    ] + [
        ServingRequest(tenant="dashboard", dataset="servers",
                       constraint=constraint, priority=0)
        for constraint in dashboard_queries
    ]
    report_cost = engine.explain("servers", report_queries[0]).estimated_ios
    budgets = {"batch_report": TenantBudget(ios_per_s=4.0 * report_cost,
                                            burst=1.2 * report_cost,
                                            policy="queue")}
    print("\nAsync serving: dashboard vs budget-capped batch reporter "
          "(%d requests) ..." % len(async_requests))
    async_result = engine.serve_async(async_requests, budgets=budgets,
                                      max_concurrency=4)
    for request, item in zip(async_requests, async_result.requests):
        assert {tuple(p) for p in item.answer.points} == {
            tuple(p) for p in servers if request.constraint.below(p)}
    print("  outcomes        : %s (%d deferrals of the capped tenant)"
          % (async_result.outcomes(),
             sum(item.deferrals for item in async_result.requests)))
    print("  dashboard p95   : %.1f ms turnaround"
          % (async_result.turnaround_percentile("dashboard", 0.95) * 1e3))
    print("  batch_report p95: %.1f ms turnaround (throttled, by design)"
          % (async_result.turnaround_percentile("batch_report", 0.95) * 1e3))

    # --- live writes: routed inserts applied to every replica --------------
    # engine.insert routes each new server by cpu_load through the range
    # router and applies it to *both* replicas of the target shard, so
    # reads keep spreading over the full replica set afterwards.
    print("\nIngesting 5 fresh servers through the routed write path ...")
    new_servers = np.column_stack([
        rng.beta(2, 3, 5), rng.beta(2, 4, 5), rng.gamma(2.0, 0.1, 5)])
    for row in new_servers:
        result = engine.insert("servers", row)
        print("  cpu %.2f -> shard %d, %d replicas, %d I/Os"
              % (row[0], result.shard_id, result.replicas, result.ios))
    retired = engine.delete("servers", tuple(new_servers[0]))
    assert retired.applied                                 # decommissioned
    live = np.vstack([servers, new_servers[1:]])
    fresh = engine.query("servers", constraint, clear_cache=True)
    assert {tuple(p) for p in fresh.points} == {
        tuple(p) for p in live if constraint.below(p)}
    for shard in engine.catalog.sharded("servers").nonempty_shards():
        assert shard.replicas_for_query() == [0, 1]        # no pinning
    writes = engine.summary()["writes"]["servers"]
    print("  write counters  : %d inserts, %d deletes, p95 %.2f ms"
          % (writes["inserts"], writes["deletes"],
             writes["latency_s"]["p95"] * 1e3))

    print("\nOpening the HTTP front-end (dashboard key unlimited, "
          "reporter key budget-capped) ...")
    from repro.engine.server import ApiKey, ServerClient
    keys = [
        ApiKey(key="dash-key", tenant="dashboard"),
        ApiKey(key="report-key", tenant="batch_report",
               budget=TenantBudget(ios_per_s=60.0, burst=66.0,
                                   policy="degrade")),
    ]
    with engine.serve_http(keys) as server:
        host, port = server.address
        print("  listening on %s" % server.url)
        dash = ServerClient(host, port, api_key="dash-key")
        status, body = dash.query("servers", [-0.2, -0.1], 0.4)
        print("  POST /query     : %d %s, %d servers in %d I/Os"
              % (status, body["outcome"], body["answer"]["count"],
                 body["answer"]["ios"]))
        status, events = dash.query_stream("servers", [-0.2, -0.1], 0.35)
        estimate, result = events
        low, high = estimate.data["count_interval"]
        print("  GET /query/stream: estimate %d in [%d, %d] first, "
              "exact %d follows"
              % (estimate.data["count_estimate"], low, high,
                 result.data["answer"]["count"]))
        reporter = ServerClient(host, port, api_key="report-key")
        outcomes = [reporter.query("servers", [0.0, 0.0],
                                   0.8 + 0.01 * i)[1]["outcome"]
                    for i in range(4)]
        print("  capped reporter : %s (over budget -> degraded answers "
              "with intervals)" % ", ".join(outcomes))
        status, stats_body = dash.stats()
        print("  GET /stats      : %d, endpoints %s"
              % (status, sorted(stats_body["http"])))
    print("  server drained and stopped.")

    print()
    print(engine.stats.to_table(title="engine serving dashboard"))
    summary = engine.summary()
    print("\nplan distribution : %s" % summary["plan_distribution"])
    print("result cache      : %.0f%% of requests"
          % (100 * summary["result_cache_hit_rate"]))
    print("buffer-pool reuse : %.0f%% of block reads served from memory"
          % (100 * summary["store_cache_hit_rate"]))
    print("shard fan-out     : %d shard visits, %d pruned (%.0f%%)"
          % (summary["shards_queried"], summary["shards_pruned"],
             100 * summary["shard_prune_rate"]))
    print("admission         : %s" % summary["admission"])
    print("replica load      : %s" % summary["replica_load"])
    engine.close()   # removes the file backends' temp block files
    print("\nAll answers verified against in-memory filters.  Done.")


if __name__ == "__main__":
    main()
