"""A miniature constraint-query engine over a 3-D fact table.

Constraint query languages (one of the paper's motivations, Section 1) ask
for all tuples satisfying a conjunction of linear constraints.  A single
constraint is a halfspace query; a conjunction is a convex polytope, which
the linear-size partition tree of Section 5 answers directly (Remark i).

The scenario: a table of servers with three numeric attributes
(cpu_load, memory_load, latency_ms, all normalised).  The "engine" accepts
conjunctions such as::

    cpu_load + memory_load <= 1.2   AND   latency_ms <= 0.3

builds the corresponding polytope, and reports the qualifying servers with
their I/O cost — for both a single-constraint query (via the 3-D structure
of Section 4) and a multi-constraint query (via the partition tree).

Run with::

    python examples/constraint_engine.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import HalfspaceIndex3D, LinearConstraint, PartitionTreeIndex
from repro.geometry.simplex import Halfspace, Simplex
from repro.workloads import uniform_points


def main() -> None:
    num_servers = 6_000
    block_size = 64

    print("Generating %d servers with (cpu_load, memory_load, latency) ..."
          % num_servers)
    rng = np.random.default_rng(2)
    servers = np.column_stack([
        rng.beta(2, 3, num_servers),          # cpu_load in [0, 1]
        rng.beta(2, 4, num_servers),          # memory_load in [0, 1]
        rng.gamma(2.0, 0.1, num_servers),     # latency (normalised)
    ])

    print("Building the Section 5 partition tree and the Section 4 structure ...")
    tree = PartitionTreeIndex(servers, block_size=block_size)
    sampling = HalfspaceIndex3D(servers, block_size=block_size, copies=3, seed=9)
    n_blocks = math.ceil(num_servers / block_size)
    print("  table: %d blocks; partition tree: %d blocks; sampling index: %d blocks"
          % (n_blocks, tree.space_blocks, sampling.space_blocks))

    # --- single linear constraint: latency <= 0.4 - 0.2 cpu - 0.1 mem ------
    constraint = LinearConstraint(coeffs=(-0.2, -0.1), offset=0.4)
    via_tree = tree.query_with_stats(constraint)
    via_sampling = sampling.query_with_stats(constraint)
    assert {tuple(p) for p in via_tree.points} == {tuple(p) for p in via_sampling.points}
    print("\nSingle constraint: latency <= 0.4 - 0.2*cpu - 0.1*mem")
    print("  %d servers qualify" % via_tree.count)
    print("  partition tree : %4d I/Os (linear space)" % via_tree.total_ios)
    print("  sampling index : %4d I/Os (n log n space)" % via_sampling.total_ios)

    # --- conjunction of constraints = a convex polytope ---------------------
    polytope = Simplex(halfspaces=(
        Halfspace(normal=(1.0, 1.0, 0.0), offset=0.55),   # cpu + mem <= 0.55
        Halfspace(normal=(0.0, 0.0, 1.0), offset=0.12),   # latency <= 0.12
        Halfspace(normal=(-1.0, 0.0, 0.0), offset=-0.05),  # cpu >= 0.05
    ))
    store = tree.store
    store.clear_cache()
    before = store.stats.snapshot()
    matches = tree.query_simplex(polytope)
    ios = store.stats.delta(before).total
    expected = [tuple(row) for row in servers if polytope.contains(row)]
    assert sorted(matches) == sorted(expected)
    print("\nConjunction: cpu+mem <= 0.55  AND  latency <= 0.12  AND  cpu >= 0.05")
    print("  %d servers qualify, reported in %d I/Os (table scan: %d I/Os)"
          % (len(matches), ios, n_blocks))

    print("\nAll answers verified against in-memory filters.  Done.")


if __name__ == "__main__":
    main()
