"""Quickstart: index a point set and run linear-constraint queries.

This is the 60-second tour of the library: build the optimal 2-D structure
of Section 3 over a random point set, pose a few halfplane queries, and
look at the two costs the paper cares about — disk blocks used and I/Os per
query — next to the trivial full-scan baseline.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import HalfplaneIndex2D, LinearConstraint
from repro.baselines import FullScanIndex
from repro.workloads import halfspace_queries_with_selectivity, uniform_points


def main() -> None:
    num_points = 20_000
    block_size = 64

    print("Generating %d uniform points ..." % num_points)
    points = uniform_points(num_points, seed=7)

    print("Building the Section 3 structure (linear space, optimal queries) ...")
    index = HalfplaneIndex2D(points, block_size=block_size, seed=1)
    scan = FullScanIndex(points, block_size=block_size)

    n_blocks = math.ceil(num_points / block_size)
    print("  data size n = %d blocks, index size = %d blocks (%.1f x n)"
          % (n_blocks, index.space_blocks, index.space_blocks / n_blocks))

    # A hand-written constraint: report every point with y <= 0.5 x - 0.4.
    constraint = LinearConstraint(coeffs=(0.5,), offset=-0.4)
    result = index.query_with_stats(constraint)
    print("\nQuery y <= 0.5 x - 0.4:")
    print("  reported %d points in %d I/Os (output alone needs %d blocks)"
          % (result.count, result.total_ios,
             math.ceil(result.count / block_size)))

    # Calibrated queries: 1 % and 20 % selectivity.
    for selectivity in (0.01, 0.20):
        constraint = halfspace_queries_with_selectivity(
            points, 1, selectivity, seed=int(selectivity * 100))[0]
        ours = index.query_with_stats(constraint)
        baseline = scan.query_with_stats(constraint)
        print("\nQuery with ~%.0f%% selectivity:" % (100 * selectivity))
        print("  Section 3 structure: %5d I/Os for %d points"
              % (ours.total_ios, ours.count))
        print("  full scan baseline : %5d I/Os for %d points"
              % (baseline.total_ios, baseline.count))
        assert {tuple(p) for p in ours.points} == {tuple(p) for p in baseline.points}

    print("\nAnswers verified identical to the baseline.  Done.")


if __name__ == "__main__":
    main()
