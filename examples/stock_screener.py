"""Stock screener: the paper's own motivating SQL example (Section 1.1).

    SELECT Name FROM Companies
    WHERE (PricePerShare - 10 * EarningsPerShare < 0)

Interpreting every (EarningsPerShare, PricePerShare) pair as a point in the
plane, the WHERE clause is the linear constraint ``y <= 10 x``, i.e. a
halfplane query.  This example keeps a side table of company names, indexes
the numeric pairs with the optimal 2-D structure, and answers price/earnings
screens for several thresholds, reporting the I/O cost of each.

Run with::

    python examples/stock_screener.py
"""

from __future__ import annotations

import math

from repro import HalfplaneIndex2D, LinearConstraint
from repro.workloads.distributions import company_table


def main() -> None:
    num_companies = 20_000
    block_size = 128

    print("Generating the Companies(Name, PricePerShare, EarningsPerShare) "
          "relation with %d rows ..." % num_companies)
    table = company_table(num_companies, seed=42)

    # The index stores (EarningsPerShare, PricePerShare) points; a separate
    # dictionary maps the (rounded) pair back to company names, playing the
    # role of the primary table.
    points = [(earnings, price) for __, price, earnings in table]
    names = {}
    for name, price, earnings in table:
        names.setdefault((round(earnings, 9), round(price, 9)), []).append(name)

    print("Building the linear-constraint index ...")
    index = HalfplaneIndex2D(points, block_size=block_size, seed=3)
    n_blocks = math.ceil(num_companies / block_size)
    print("  relation occupies %d blocks, index %d blocks"
          % (n_blocks, index.space_blocks))

    for ratio in (5.0, 10.0, 25.0):
        # PricePerShare <= ratio * EarningsPerShare  <=>  y <= ratio * x.
        constraint = LinearConstraint(coeffs=(ratio,), offset=0.0)
        result = index.query_with_stats(constraint)
        sample = [names[(round(e, 9), round(p, 9))][0] for e, p in result.points[:5]]
        print("\nScreen: price/earnings <= %.0f" % ratio)
        print("  %d companies qualify (%.1f%% of the relation)"
              % (result.count, 100.0 * result.count / num_companies))
        print("  answered in %d I/Os; the output alone occupies %d blocks"
              % (result.total_ios, math.ceil(max(1, result.count) / block_size)))
        print("  sample of matches:", ", ".join(sample) if sample else "(none)")

    # Verify one screen against the straightforward relational scan.
    constraint = LinearConstraint(coeffs=(10.0,), offset=0.0)
    expected = {(e, p) for __, p, e in table if p - 10.0 * e <= 1e-9}
    actual = {tuple(point) for point in index.query(constraint)}
    assert actual == expected
    print("\nVerified the P/E <= 10 screen against a full relational scan.")


if __name__ == "__main__":
    main()
