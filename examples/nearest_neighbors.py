"""k-nearest-neighbour search on disk (Theorem 4.3).

A facility-location flavoured scenario: given a large set of customer
locations stored on (simulated) disk, repeatedly ask for the k customers
closest to a candidate warehouse site.  The index lifts every customer to a
plane in R^3 (the paraboloid lifting of Section 4) and answers each query
with O(log_B n + k/B) expected I/Os — far fewer than scanning the whole
customer file.

Run with::

    python examples/nearest_neighbors.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import KNNIndex
from repro.workloads import clustered_points


def main() -> None:
    num_customers = 8_000
    block_size = 64

    print("Generating %d customer locations (clustered around 12 towns) ..."
          % num_customers)
    customers = clustered_points(num_customers, clusters=12, spread=0.04, seed=11)

    print("Building the k-nearest-neighbour index (paraboloid lifting) ...")
    index = KNNIndex(customers, block_size=block_size, copies=3, seed=5)
    n_blocks = math.ceil(num_customers / block_size)
    print("  customer file: %d blocks, index: %d blocks"
          % (n_blocks, index.space_blocks))

    candidate_sites = [(-0.5, -0.5), (0.0, 0.0), (0.7, 0.3)]
    for site in candidate_sites:
        for k in (5, 100):
            neighbours, stats = index.nearest_with_stats(site, k)
            furthest = max(math.hypot(p[0] - site[0], p[1] - site[1])
                           for p in neighbours)
            print("\nSite %s, k=%d:" % (site, k))
            print("  found the %d nearest customers in %d I/Os "
                  "(full scan would be %d I/Os)" % (k, stats.total, n_blocks))
            print("  service radius for this k: %.3f" % furthest)

    # Verify one answer against brute force.
    site, k = candidate_sites[1], 50
    neighbours = index.nearest(site, k)
    distances = np.hypot(customers[:, 0] - site[0], customers[:, 1] - site[1])
    expected = [tuple(customers[i]) for i in np.argsort(distances)[:k]]
    assert neighbours == expected
    print("\nVerified the k=50 answer against a brute-force scan.  Done.")


if __name__ == "__main__":
    main()
